package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kexclusion/internal/durable"
	"kexclusion/internal/wire"
)

// ErrLeaseLost fails an ack-path quorum wait when the primary's lease
// lapsed mid-wait: the write is durable locally but this node can no
// longer vouch that a usurper hasn't taken over the shard, so the op
// must refuse rather than ack.
var ErrLeaseLost = errors.New("cluster: leader lease lost")

// Peer is one cluster member from the static -peers list.
type Peer struct {
	// ID is the member's -node-id.
	ID string
	// ClientAddr is where clients dial it (the redirect hint).
	ClientAddr string
	// ReplAddr is where followers dial its replication listener.
	ReplAddr string
}

// Replication apply failures, classified for the pull loop. The
// backend wraps these so the follower can pick the right recovery:
// a gap resyncs via state image; stale and diverged additionally
// freeze the follower's acks (acking would lend this node's durability
// vote to a history it rejected) and quarantine the stream.
var (
	// ErrReplGap marks a record beyond the next expected version: the
	// record stream cannot bridge local state, fetch a state image.
	ErrReplGap = errors.New("cluster: replicated record stream has a gap")
	// ErrReplStale marks records from an epoch the local shard has
	// moved past: the sender is a deposed primary streaming a fenced
	// fork. Its records must not be applied or acked.
	ErrReplStale = errors.New("cluster: replicated records from a deposed epoch")
	// ErrReplDiverged marks a same-epoch content fork: the record's
	// version is inside local history but re-execution or the dedup
	// window disagrees with it. Within one epoch there is one writer,
	// so this is data loss or corruption — it needs an operator, not a
	// retry.
	ErrReplDiverged = errors.New("cluster: replicated history diverged from local state")
)

// Backend is what the cluster node needs from the server it serves:
// the apply side of replication and the state images promotion and
// catch-up ship around. Defined here (and implemented by
// internal/server) so cluster never imports server.
//
// All reconciliation is ordered by (epoch, version), lexicographically:
// a shard's epoch advances on every primary takeover, and a deposed
// primary's version counter keeps inflating with writes that were
// never quorum-acked — so a higher epoch at a LOWER version still
// supersedes. Comparing bare versions is exactly the bug this ordering
// exists to prevent.
type Backend interface {
	// ApplyReplicated folds replicated op records into the local table
	// and WAL, idempotently by (shard, epoch, version): records at or
	// below the local frontier in the local epoch are skipped, the
	// next expected version is applied and locally logged (adopting
	// the record's epoch when it is newer), and records from an older
	// epoch are refused. It returns the highest local WAL LSN the
	// batch produced (0 when everything was skipped) and classifies
	// failures with ErrReplGap, ErrReplStale or ErrReplDiverged.
	ApplyReplicated(recs []durable.Record) (uint64, error)
	// WaitLocalDurable blocks until the local WAL has fsynced lsn —
	// the precondition for acknowledging replicated records upstream.
	WaitLocalDurable(lsn uint64) error
	// InstallState folds a full per-shard image into the local table,
	// keeping only shards (epoch, version)-ahead of local state, and
	// persists a local snapshot so the catch-up survives a restart.
	// covered reports whether, afterwards, local state is at or beyond
	// the image on every shard it holds — the condition for acking the
	// log position the image came with. A stale image (the sender is
	// behind, or streaming a fenced fork) reports false: installing
	// nothing is fine, but vouching for the sender's log is not.
	InstallState(shards map[uint32]durable.ShardState) (covered bool, err error)
	// Frontier returns every shard's current mutation version and
	// failover epoch (same index, same length).
	Frontier() (vers, epochs []uint64)
	// StateImage returns a consistent per-shard image (dedup windows
	// included) for shipping to a catching-up or promoting peer.
	StateImage() map[uint32]durable.ShardState
	// BumpEpochs advances the failover epoch of each listed shard and
	// persists a snapshot fencing the bump, called by a promotion
	// after catch-up and before serving: every write the new primary
	// applies outranks any straggler from the deposed one.
	BumpEpochs(shards []uint32) error
}

// Config assembles a Node.
type Config struct {
	// NodeID is this node's member ID; it must appear in Peers.
	NodeID string
	// Peers is the full static membership, this node included.
	Peers []Peer
	// Shards is the table width (identical on every member).
	Shards int
	// Quorum is how many nodes (this one included) must have fsynced a
	// batch before the client ack; clamped to [1, len(Peers)].
	Quorum int
	// Log is the local WAL; the serving side reads batches straight
	// from it.
	Log *durable.Log
	// Backend is the local server's apply side.
	Backend Backend
	// FailAfter is how long a peer may stay unreachable before it is
	// suspected dead and its shards fall to ring successors (default
	// 2s).
	FailAfter time.Duration
	// LeaseDuration is how long quorum witness (pull/ack contact from
	// enough peers) keeps this node's leader lease alive. It must be
	// strictly shorter than FailAfter: a deposed primary's lease then
	// expires — and it stops admitting — before any usurper can clear
	// the failure detector and promote. Default FailAfter/2.
	LeaseDuration time.Duration
	// PullWait is the long-poll budget a caught-up pull parks for
	// (default 500ms).
	PullWait time.Duration
	// QuorumTimeout bounds the ack-path quorum wait (default 5s).
	QuorumTimeout time.Duration
	// Logf receives membership and promotion notices.
	Logf func(format string, args ...any)
	// OnPromoteStart and OnPromoteDone bracket a promotion: the node
	// is taking over the listed shards and is replaying peer state
	// (recovering), then serving them (running). Wired to the server's
	// lifecycle phases.
	OnPromoteStart func(shards []uint32)
	OnPromoteDone  func(shards []uint32)
	// OnDemote fires when the node stops serving shards outside a
	// graceful handover — today, on lease expiry. Wired to the server's
	// lifecycle (running -> degraded).
	OnDemote func(shards []uint32)
}

func (c *Config) fill() error {
	if c.FailAfter <= 0 {
		c.FailAfter = 2 * time.Second
	}
	if c.LeaseDuration <= 0 {
		c.LeaseDuration = c.FailAfter / 2
	}
	if c.LeaseDuration >= c.FailAfter {
		return fmt.Errorf("cluster: lease %v must be strictly shorter than fail-after %v (a deposed primary must stop serving before any successor can promote)",
			c.LeaseDuration, c.FailAfter)
	}
	if c.PullWait <= 0 {
		c.PullWait = 500 * time.Millisecond
	}
	// The pull long-poll is the lease's heartbeat carrier: an idle
	// caught-up follower touches this node once per PullWait. Clamp it
	// under half the lease so a healthy-but-idle cluster never lets the
	// lease flap between polls.
	if limit := c.LeaseDuration / 2; c.PullWait > limit {
		c.PullWait = limit
		if c.PullWait < 10*time.Millisecond {
			c.PullWait = 10 * time.Millisecond
		}
	}
	if c.QuorumTimeout <= 0 {
		c.QuorumTimeout = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Shards <= 0 {
		return fmt.Errorf("cluster: shards must be positive")
	}
	if c.Log == nil || c.Backend == nil {
		return fmt.Errorf("cluster: Log and Backend are required")
	}
	found := false
	for _, p := range c.Peers {
		if p.ID == c.NodeID {
			found = true
		}
		if p.ID == "" || p.ClientAddr == "" || p.ReplAddr == "" {
			return fmt.Errorf("cluster: peer %+v needs id, client addr and repl addr", p)
		}
	}
	if !found {
		return fmt.Errorf("cluster: node id %q not in peer list", c.NodeID)
	}
	if c.Quorum < 1 {
		c.Quorum = 1
	}
	if c.Quorum > len(c.Peers) {
		c.Quorum = len(c.Peers)
	}
	return nil
}

// Node runs one kexserved's share of the cluster: a replication
// listener serving pulls from its WAL, one pull loop per peer feeding
// the local table, a failure detector over pull outcomes, and the
// shard-ownership map the server consults per request.
type Node struct {
	cfg    Config
	ring   *Ring
	peers  map[string]Peer
	others []Peer // every peer but this node
	quorum *quorumTracker

	ln net.Listener

	mu        sync.Mutex
	serving   map[uint32]bool // shards this node currently serves
	lastSeen  map[string]time.Time
	contacted map[string]bool   // peers actually heard from this incarnation
	pins      map[string]int    // follower node ID -> WAL pin handle
	lag       map[string]uint64 // follower node ID -> end - acked at last ack
	resume    map[string]uint64 // peer node ID -> pull resume position
	acked     map[string]uint64 // peer node ID -> last LSN this node vouched for
	promoting bool
	gateHeld  bool // last promotion attempt was quorum-gated (log once)
	leaseWas  bool // lease state at the last membership tick (edge detect)
	stopped   bool

	leaseExpirations atomic.Int64 // held -> expired transitions
	leaseDemotions   atomic.Int64 // shards self-demoted on lease expiry

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// New validates the config, builds the ring, and binds the replication
// listener (so a misconfigured address fails at startup, not at first
// failover). Start launches the loops.
func New(cfg Config) (*Node, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	ids := make([]string, len(cfg.Peers))
	peers := make(map[string]Peer, len(cfg.Peers))
	var others []Peer
	for i, p := range cfg.Peers {
		ids[i] = p.ID
		peers[p.ID] = p
		if p.ID != cfg.NodeID {
			others = append(others, p)
		}
	}
	ring, err := NewRing(ids)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", peers[cfg.NodeID].ReplAddr)
	if err != nil {
		return nil, fmt.Errorf("cluster: replication listener: %w", err)
	}
	n := &Node{
		cfg:       cfg,
		ring:      ring,
		peers:     peers,
		others:    others,
		quorum:    newQuorumTracker(cfg.Quorum),
		ln:        ln,
		serving:   make(map[uint32]bool),
		lastSeen:  make(map[string]time.Time),
		contacted: make(map[string]bool),
		pins:      make(map[string]int),
		lag:       make(map[string]uint64),
		resume:    make(map[string]uint64),
		acked:     make(map[string]uint64),
		stopCh:    make(chan struct{}),
	}
	now := time.Now()
	for _, p := range others {
		n.lastSeen[p.ID] = now // grace: nobody is suspect before FailAfter
	}
	return n, nil
}

// ReplAddr is the bound replication listener address (useful when the
// configured address had port 0).
func (n *Node) ReplAddr() string { return n.ln.Addr().String() }

// Quorum is the effective ack quorum.
func (n *Node) Quorum() int { return n.cfg.Quorum }

// Start brings the node to service: it catches up from any reachable
// peer ahead of local state (a restarted node rejoining must not serve
// stale shards), then launches the accept loop, the per-peer pull
// loops, and the failure detector. It does NOT serve anything yet —
// every serving transition, the boot-time claim of ring-owned shards
// included, goes through the membership loop's promote path, which is
// quorum-gated and bumps the shard epochs. One path means one set of
// rules: a node that cannot see a quorum serves nothing, so a
// partitioned minority cannot inflate a history it would later try to
// impose on the majority.
func (n *Node) Start() {
	owned := n.ownedShards(func(string) bool { return true })
	if len(n.others) > 0 {
		n.catchUpFromPeers(owned)
	}
	n.cfg.Logf("cluster: node %s started; claiming %d/%d ring-owned shards via promotion at quorum %d",
		n.cfg.NodeID, len(owned), n.cfg.Shards, n.cfg.Quorum)

	n.wg.Add(2)
	go n.acceptLoop()
	go n.membershipLoop()
	for _, p := range n.others {
		n.wg.Add(1)
		go n.pullLoop(p)
	}
}

// Stop tears the node down: listener closed, loops drained, quorum
// waiters failed.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	n.mu.Unlock()
	close(n.stopCh)
	n.ln.Close()
	n.quorum.close(errors.New("cluster: node stopped"))
	n.wg.Wait()
}

// Owns reports whether this node currently serves shard. Serving is
// lease-gated: a primary whose quorum witness has gone quiet for a
// full LeaseDuration answers false here immediately, before the
// membership sweep formally demotes it — the read path and the admit
// path both consult Owns, so an isolated primary stops admitting
// writes and serving unleased reads within one lease interval.
func (n *Node) Owns(shard uint32) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.serving[shard] && n.leaseHeldLocked(time.Now())
}

// leaseWitnessesLocked counts the nodes currently witnessing this
// node's lease: itself, plus every peer actually contacted this
// incarnation whose last contact is within LeaseDuration. Boot grace
// stamps don't count — an unwitnessed node holds no lease it didn't
// earn.
func (n *Node) leaseWitnessesLocked(now time.Time) int {
	cutoff := now.Add(-n.cfg.LeaseDuration)
	w := 1
	for id := range n.contacted {
		if n.lastSeen[id].After(cutoff) {
			w++
		}
	}
	return w
}

// leaseHeldLocked reports whether a quorum currently witnesses this
// node. At quorum 1 the lease is vacuously held: a lone member (or an
// explicitly unreplicated deployment) depends on no peers, exactly as
// its ack path does.
func (n *Node) leaseHeldLocked(now time.Time) bool {
	if n.cfg.Quorum <= 1 {
		return true
	}
	return n.leaseWitnessesLocked(now) >= n.cfg.Quorum
}

// LeaseHeld reports whether this node's leader lease is currently
// witnessed by a quorum.
func (n *Node) LeaseHeld() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaseHeldLocked(time.Now())
}

// LeaseDuration is the effective lease interval.
func (n *Node) LeaseDuration() time.Duration { return n.cfg.LeaseDuration }

// LeaseExpirations counts held->expired lease transitions.
func (n *Node) LeaseExpirations() int64 { return n.leaseExpirations.Load() }

// LeaseDemotions counts shards self-demoted on lease expiry.
func (n *Node) LeaseDemotions() int64 { return n.leaseDemotions.Load() }

// PrimaryAddr returns the client address of the node currently
// believed to own shard ("" when unknown), for the NotPrimary redirect
// hint. An isolated node's ring collapses to itself — hinting its own
// address would bounce clients right back — so when the computed owner
// is this node but it is not actually serving (lease expired, or
// promotion gated), the hint is empty and the refusal carries a
// Retry-After instead.
func (n *Node) PrimaryAddr(shard uint32) string {
	owner := n.ring.OwnerAmong(shard, n.aliveFn())
	if owner == n.cfg.NodeID && !n.Owns(shard) {
		return ""
	}
	if p, ok := n.peers[owner]; ok {
		return p.ClientAddr
	}
	return ""
}

// WaitQuorum blocks until the configured quorum has fsynced lsn (the
// local node counts once; the caller waits only after local
// durability). The wait re-checks the lease the same way the server's
// ack path re-checks epochs: it proceeds in short slices and fails
// fast with ErrLeaseLost the moment the lease lapses — an isolated
// primary's in-flight writes refuse within ~LeaseDuration instead of
// stalling the full QuorumTimeout for acks that can never arrive. The
// lease is re-checked once more after the tracker is satisfied, so a
// late ack raced by an expiry cannot sneak out as a client ack.
func (n *Node) WaitQuorum(lsn uint64) error {
	if n.cfg.Quorum <= 1 {
		return nil
	}
	slice := n.cfg.LeaseDuration / 4
	if slice < 10*time.Millisecond {
		slice = 10 * time.Millisecond
	}
	deadline := time.Now().Add(n.cfg.QuorumTimeout)
	for {
		if !n.LeaseHeld() {
			return fmt.Errorf("%w: cannot vouch for LSN %d", ErrLeaseLost, lsn)
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return fmt.Errorf("cluster: quorum %d not reached for LSN %d within %v",
				n.cfg.Quorum, lsn, n.cfg.QuorumTimeout)
		}
		w := slice
		if w > remain {
			w = remain
		}
		err := n.quorum.wait(lsn, w)
		if err == nil {
			if !n.LeaseHeld() {
				return fmt.Errorf("%w: cannot vouch for LSN %d", ErrLeaseLost, lsn)
			}
			return nil
		}
		if !errors.Is(err, errQuorumTimeout) {
			return err
		}
	}
}

// ReplicaLag returns the worst-case replication lag in LSNs across
// followers not currently suspected dead (0 with no live followers).
func (n *Node) ReplicaLag() uint64 {
	alive := n.aliveFn()
	end := n.cfg.Log.End()
	var worst uint64
	for _, p := range n.others {
		if !alive(p.ID) {
			continue
		}
		if a := n.quorum.ackOf(p.ID); end > a && end-a > worst {
			worst = end - a
		}
	}
	return worst
}

// aliveFn snapshots the failure detector: this node is always alive, a
// peer is alive while its last successful contact is within FailAfter.
func (n *Node) aliveFn() func(string) bool {
	n.mu.Lock()
	seen := make(map[string]time.Time, len(n.lastSeen))
	for id, t := range n.lastSeen {
		seen[id] = t
	}
	n.mu.Unlock()
	cutoff := time.Now().Add(-n.cfg.FailAfter)
	return func(id string) bool {
		if id == n.cfg.NodeID {
			return true
		}
		return seen[id].After(cutoff)
	}
}

// ownedShards lists the shards the ring assigns to this node under the
// given aliveness.
func (n *Node) ownedShards(alive func(string) bool) []uint32 {
	var out []uint32
	for s := uint32(0); s < uint32(n.cfg.Shards); s++ {
		if n.ring.OwnerAmong(s, alive) == n.cfg.NodeID {
			out = append(out, s)
		}
	}
	return out
}

// touch marks a peer as contacted now. Unlike the boot-time grace
// stamp, a touch records REAL contact — the promotion quorum gate and
// the lease witness count only touched peers, so a freshly booted (or
// freshly partitioned-off) minority cannot vote absent peers "alive"
// into its quorum. IDs outside the membership (diagnostic probes, a
// misconfigured stranger) and this node's own ID are ignored: only a
// configured peer can witness a lease.
func (n *Node) touch(id string) {
	if id == n.cfg.NodeID {
		return
	}
	if _, ok := n.peers[id]; !ok {
		return
	}
	n.mu.Lock()
	n.lastSeen[id] = time.Now()
	n.contacted[id] = true
	n.mu.Unlock()
}

// membershipLoop is the failure detector and promotion driver: it
// periodically recomputes shard ownership from pull-contact times and
// flips this node's serving set — promotion (with peer catch-up) for
// gained shards, immediate demotion for lost ones (the returning owner
// is ahead only of shards it just caught up; serving them here again
// would fork the history).
func (n *Node) membershipLoop() {
	defer n.wg.Done()
	tick := n.cfg.FailAfter / 4
	if tick < 50*time.Millisecond {
		tick = 50 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-t.C:
		}
		alive := n.aliveFn()
		want := make(map[uint32]bool, n.cfg.Shards)
		for _, s := range n.ownedShards(alive) {
			want[s] = true
		}

		n.mu.Lock()
		now := time.Now()
		held := n.leaseHeldLocked(now)
		witnesses := n.leaseWitnessesLocked(now)
		if n.leaseWas && !held {
			n.leaseExpirations.Add(1)
		}
		// Lease sweep: an expired-lease primary self-demotes every shard
		// it serves. Owns already answers false the instant the lease
		// lapses; this makes it formal (lifecycle callback, counters,
		// one log line) so the shards re-promote through the one gated
		// path when the quorum witness returns.
		var demoted []uint32
		if !held {
			for s := range n.serving {
				demoted = append(demoted, s)
				delete(n.serving, s)
			}
			if len(demoted) > 0 {
				n.leaseDemotions.Add(int64(len(demoted)))
			}
		}
		n.leaseWas = held
		var gained, lost []uint32
		for s := range want {
			if !n.serving[s] {
				gained = append(gained, s)
			}
		}
		for s := range n.serving {
			if n.serving[s] && !want[s] {
				lost = append(lost, s)
			}
		}
		for _, s := range lost {
			delete(n.serving, s)
		}
		// Promotion quorum gate: taking over shards mints a new epoch,
		// and a new epoch outranks everything — so minting is allowed
		// only when this node can actually reach a write quorum (itself
		// plus contacted-and-alive peers) AND holds a live lease. The
		// lease half closes the window between lease expiry and
		// FailAfter where an isolated node's peers still look alive: it
		// must not demote on expiry only to re-promote a tick later.
		// A partitioned minority stays a follower; its stale serving set
		// already drained via the lease sweep or `lost`, or never
		// formed. Quorum 1 passes vacuously, preserving lone-member
		// operation.
		reach := 1
		for id := range n.contacted {
			if alive(id) {
				reach++
			}
		}
		gated := reach < n.cfg.Quorum || !held
		busy := n.promoting
		if len(gained) > 0 && !busy && !gated {
			n.promoting = true
		}
		logGate := len(gained) > 0 && gated && !n.gateHeld
		n.gateHeld = len(gained) > 0 && gated
		// Release pins held for suspects: a dead follower must not
		// hold WAL retention forever. It re-pins at its ack when it
		// comes back.
		for id, pin := range n.pins {
			if !alive(id) {
				n.cfg.Log.Unpin(pin)
				delete(n.pins, id)
			}
		}
		n.mu.Unlock()

		if len(demoted) > 0 {
			n.cfg.Logf("cluster: node %s lease expired (%d/%d witnesses); self-demoted from shards %v",
				n.cfg.NodeID, witnesses, n.cfg.Quorum, demoted)
			if n.cfg.OnDemote != nil {
				n.cfg.OnDemote(demoted)
			}
		}
		if len(lost) > 0 {
			n.cfg.Logf("cluster: node %s demoted from shards %v (owner returned)", n.cfg.NodeID, lost)
		}
		if logGate {
			n.cfg.Logf("cluster: node %s sees %d/%d quorum members (lease held: %v); holding promotion of shards %v",
				n.cfg.NodeID, reach, n.cfg.Quorum, held, gained)
		}
		if len(gained) > 0 && !busy && !gated {
			n.promote(gained)
		}
	}
}

// promote takes over shards — a dead owner's, or this node's own at
// boot: it declares the recovering phase, closes the quorum-exactness
// gap by catching up from every reachable peer (an acked record lives
// on a quorum, and at least one reachable member of any quorum
// survives the owner), mints the shards' next epoch so every write it
// will apply outranks any straggler from the previous primary, then
// serves. The warm replica state makes this a frontier check plus at
// most one state fetch, not a cold replay.
func (n *Node) promote(shards []uint32) {
	if n.cfg.OnPromoteStart != nil {
		n.cfg.OnPromoteStart(shards)
	}
	n.cfg.Logf("cluster: node %s promoting for shards %v", n.cfg.NodeID, shards)
	n.catchUpFromPeers(shards)
	if err := n.cfg.Backend.BumpEpochs(shards); err != nil {
		// Without the fencing epoch the takeover is not safe to serve;
		// stand down and let the next membership tick retry.
		n.cfg.Logf("cluster: node %s: epoch bump for shards %v failed, not serving: %v", n.cfg.NodeID, shards, err)
		n.mu.Lock()
		n.promoting = false
		n.mu.Unlock()
		return
	}
	n.mu.Lock()
	for _, s := range shards {
		n.serving[s] = true
	}
	n.promoting = false
	n.mu.Unlock()
	if n.cfg.OnPromoteDone != nil {
		n.cfg.OnPromoteDone(shards)
	}
	n.cfg.Logf("cluster: node %s now primary for shards %v", n.cfg.NodeID, shards)
}

// catchUpFromPeers queries every reachable peer's frontier and
// installs a state image from each peer (epoch, version)-ahead of
// local state on any of the listed shards. The lexicographic order is
// the point: after a fork, the acknowledged history lives at a higher
// epoch but possibly a LOWER version than a deposed primary's
// never-acked tail — a bare version comparison would skip exactly the
// peer that holds the data. Unreachable peers are skipped: they are
// the dead node itself, or nodes whose acked history another reachable
// quorum member also holds.
func (n *Node) catchUpFromPeers(shards []uint32) {
	localV, localE := n.cfg.Backend.Frontier()
	for _, p := range n.others {
		frontV, frontE, err := n.queryFrontier(p)
		if err != nil {
			n.cfg.Logf("cluster: node %s: frontier from %s unavailable: %v", n.cfg.NodeID, p.ID, err)
			continue
		}
		ahead := false
		for _, s := range shards {
			if int(s) >= len(frontV) {
				continue
			}
			if frontE[s] > localE[s] || (frontE[s] == localE[s] && frontV[s] > localV[s]) {
				ahead = true
				break
			}
		}
		if !ahead {
			continue
		}
		img, _, err := n.fetchState(p)
		if err != nil {
			n.cfg.Logf("cluster: node %s: state from %s unavailable: %v", n.cfg.NodeID, p.ID, err)
			continue
		}
		if _, err := n.cfg.Backend.InstallState(img); err != nil {
			n.cfg.Logf("cluster: node %s: installing state from %s: %v", n.cfg.NodeID, p.ID, err)
			continue
		}
		localV, localE = n.cfg.Backend.Frontier()
		n.cfg.Logf("cluster: node %s caught up from %s", n.cfg.NodeID, p.ID)
	}
}

// dialTimeout bounds synchronous peer RPCs (frontier, state fetch).
const dialTimeout = 2 * time.Second

// dialRepl opens a replication connection and completes the handshake.
func (n *Node) dialRepl(p Peer) (net.Conn, wire.ReplWelcome, error) {
	conn, err := net.DialTimeout("tcp", p.ReplAddr, dialTimeout)
	if err != nil {
		return nil, wire.ReplWelcome{}, err
	}
	if err := wire.WriteReplFrame(conn, wire.ReplHello{NodeID: n.cfg.NodeID}.Encode()); err != nil {
		conn.Close()
		return nil, wire.ReplWelcome{}, err
	}
	conn.SetReadDeadline(time.Now().Add(dialTimeout))
	b, err := wire.ReadReplFrame(conn)
	if err != nil {
		conn.Close()
		return nil, wire.ReplWelcome{}, err
	}
	conn.SetReadDeadline(time.Time{})
	w, err := wire.ParseReplWelcome(b)
	if err != nil {
		conn.Close()
		return nil, wire.ReplWelcome{}, err
	}
	if w.Status != wire.StatusOK {
		conn.Close()
		return nil, wire.ReplWelcome{}, fmt.Errorf("cluster: peer %s refused replication: %s", p.ID, w.Status)
	}
	if int(w.Shards) != n.cfg.Shards {
		conn.Close()
		return nil, wire.ReplWelcome{}, fmt.Errorf("cluster: peer %s has %d shards, this node %d — mismatched cluster config", p.ID, w.Shards, n.cfg.Shards)
	}
	return conn, w, nil
}

// queryFrontier fetches a peer's per-shard (version, epoch) frontier.
func (n *Node) queryFrontier(p Peer) (vers, epochs []uint64, err error) {
	conn, _, err := n.dialRepl(p)
	if err != nil {
		return nil, nil, err
	}
	defer conn.Close()
	if err := wire.WriteReplFrame(conn, wire.EncodeFrontierRequest()); err != nil {
		return nil, nil, err
	}
	conn.SetReadDeadline(time.Now().Add(dialTimeout))
	b, err := wire.ReadReplFrame(conn)
	if err != nil {
		return nil, nil, err
	}
	f, err := wire.ParseFrontierResponse(b)
	if err != nil {
		return nil, nil, err
	}
	if f.Status != wire.StatusOK {
		return nil, nil, fmt.Errorf("cluster: peer %s frontier: %s", p.ID, f.Status)
	}
	return f.Vers, f.Epochs, nil
}

// fetchState fetches a peer's full state image and the log position it
// covers.
func (n *Node) fetchState(p Peer) (map[uint32]durable.ShardState, uint64, error) {
	conn, _, err := n.dialRepl(p)
	if err != nil {
		return nil, 0, err
	}
	defer conn.Close()
	if err := wire.WriteReplFrame(conn, wire.EncodeStateRequest()); err != nil {
		return nil, 0, err
	}
	conn.SetReadDeadline(time.Now().Add(30 * time.Second)) // images can be large
	b, err := wire.ReadReplFrame(conn)
	if err != nil {
		return nil, 0, err
	}
	st, err := wire.ParseStateResponse(b)
	if err != nil {
		return nil, 0, err
	}
	if st.Status != wire.StatusOK {
		return nil, 0, fmt.Errorf("cluster: peer %s state: %s", p.ID, st.Status)
	}
	img, err := durable.DecodeState(st.Image)
	if err != nil {
		return nil, 0, err
	}
	return img, st.ResumeLSN, nil
}
