package cluster

import (
	"errors"
	"net"
	"time"

	"kexclusion/internal/durable"
	"kexclusion/internal/wire"
)

// pullBackoff is how long a pull loop sleeps after a failed dial or a
// broken stream before retrying. Short relative to FailAfter so one
// transient error does not mark a healthy peer suspect.
const pullBackoff = 200 * time.Millisecond

// quarantineBackoff is the sleep after a stale-epoch or diverged
// stream. Those are not transient: the peer is a deposed primary
// replaying a fenced fork (it heals by catching up itself) or a
// same-epoch content fork (it does not heal at all). Hammering it at
// pullBackoff would only spam both logs.
const quarantineBackoff = 3 * time.Second

// pullLoop is the follower side of replication against one peer: dial,
// handshake, state catch-up when needed, then pull batches forever —
// applying each batch to the local table, fsyncing it locally, and
// acking by piggybacking the durable position on the next pull. The
// loop outlives any single connection; resume positions persist across
// reconnects in memory and restart from a state image after a process
// restart.
func (n *Node) pullLoop(p Peer) {
	defer n.wg.Done()
	for {
		select {
		case <-n.stopCh:
			return
		default:
		}
		if err := n.pullSession(p); err != nil {
			backoff := pullBackoff
			if errors.Is(err, ErrReplStale) || errors.Is(err, ErrReplDiverged) {
				backoff = quarantineBackoff
			}
			select {
			case <-n.stopCh:
				return
			case <-time.After(backoff):
			}
		}
	}
}

// pullSession runs one replication connection until it breaks.
func (n *Node) pullSession(p Peer) error {
	conn, _, err := n.dialRepl(p)
	if err != nil {
		return err
	}
	defer conn.Close()
	// A successful handshake is peer contact: the failure detector
	// cares that the peer answers, not that records flow.
	n.touch(p.ID)

	// Stop unblocks reads by closing the connection.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-n.stopCh:
			conn.Close()
		case <-done:
		}
	}()

	// pos is where reading resumes; ack is the position this node
	// VOUCHES for — everything at or below it applied here and is
	// locally durable. The two separate exactly when the stream goes
	// bad: a follower that rejected records (a deposed primary's
	// fenced fork) must keep its ack frozen even while probing ahead,
	// because the peer counts acks toward its write quorum — acking a
	// rejected suffix would help a fork get acknowledged to a client
	// and then discarded.
	n.mu.Lock()
	pos := n.resume[p.ID]
	ack := n.acked[p.ID]
	n.mu.Unlock()
	if pos == 0 {
		// First contact this incarnation: a fresh process does not know
		// its position in the peer's LSN space, and replaying the
		// peer's whole log would race its pruning. Install a state
		// image (idempotent: only (epoch, version)-newer shards land)
		// and pull from the position it covers.
		img, resumeAt, err := n.stateCatchUp(conn)
		if err != nil {
			return err
		}
		covered, err := n.cfg.Backend.InstallState(img)
		if err != nil {
			return err
		}
		pos = resumeAt
		if covered {
			ack = resumeAt
		}
		n.setResume(p.ID, pos, ack)
	}

	for {
		req := wire.PullRequest{
			FromLSN:    pos,
			AckLSN:     ack,
			WaitMillis: uint32(n.cfg.PullWait / time.Millisecond),
		}
		if err := wire.WriteReplFrame(conn, req.Encode()); err != nil {
			return err
		}
		// The peer parks a caught-up pull for WaitMillis; allow that
		// plus generous slack before declaring the stream dead.
		conn.SetReadDeadline(time.Now().Add(n.cfg.PullWait + dialTimeout))
		b, err := wire.ReadReplFrame(conn)
		if err != nil {
			return err
		}
		resp, err := wire.ParsePullResponse(b)
		if err != nil {
			return err
		}
		if resp.Status != wire.StatusOK {
			return errors.New("cluster: peer ended replication: " + resp.Status.String())
		}
		n.touch(p.ID)

		if resp.Pruned {
			// Our tail was pruned out from under us (the peer was not
			// pinned while we were away). Re-enter via a state image.
			img, resumeAt, err := n.stateCatchUp(conn)
			if err != nil {
				return err
			}
			covered, err := n.cfg.Backend.InstallState(img)
			if err != nil {
				return err
			}
			pos = resumeAt
			if covered {
				ack = resumeAt
			}
			n.setResume(p.ID, pos, ack)
			continue
		}

		if len(resp.Records) > 0 {
			localLSN, err := n.cfg.Backend.ApplyReplicated(resp.Records)
			if err != nil {
				// The ack stays where it was — nothing past it is vouched
				// for. A gap resyncs via state image on the next session; a
				// stale or diverged stream does too, but its image will not
				// cover local state either, so the ack keeps holding until
				// the peer heals (stale) or an operator steps in (diverged).
				if errors.Is(err, ErrReplDiverged) {
					n.cfg.Logf("cluster: node %s: OPERATOR INTERVENTION NEEDED: history from %s diverged from local state within one epoch: %v",
						n.cfg.NodeID, p.ID, err)
				} else {
					n.cfg.Logf("cluster: node %s: applying batch from %s: %v", n.cfg.NodeID, p.ID, err)
				}
				n.setResume(p.ID, 0, ack)
				return err
			}
			if localLSN > 0 {
				// Local fsync BEFORE the ack moves: the next pull's
				// AckLSN vouches for this batch, so it must be on local
				// disk first — the prefix-durability invariant.
				if err := n.cfg.Backend.WaitLocalDurable(localLSN); err != nil {
					return err
				}
			}
		}
		pos = resp.ResumeLSN
		ack = pos
		n.setResume(p.ID, pos, ack)
		n.observeLag(p.ID, resp.End, pos)
	}
}

// stateCatchUp requests a state image on an established replication
// connection.
func (n *Node) stateCatchUp(conn net.Conn) (map[uint32]durable.ShardState, uint64, error) {
	if err := wire.WriteReplFrame(conn, wire.EncodeStateRequest()); err != nil {
		return nil, 0, err
	}
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	b, err := wire.ReadReplFrame(conn)
	if err != nil {
		return nil, 0, err
	}
	st, err := wire.ParseStateResponse(b)
	if err != nil {
		return nil, 0, err
	}
	if st.Status != wire.StatusOK {
		return nil, 0, errors.New("cluster: peer refused state image: " + st.Status.String())
	}
	img, err := durable.DecodeState(st.Image)
	if err != nil {
		return nil, 0, err
	}
	return img, st.ResumeLSN, nil
}

func (n *Node) setResume(peer string, pos, ack uint64) {
	n.mu.Lock()
	n.resume[peer] = pos
	if ack > n.acked[peer] {
		n.acked[peer] = ack
	}
	n.mu.Unlock()
}

// observeLag records how far behind this node is on a peer's log, for
// the local follower-side view (the peer's own stats expose the
// authoritative per-follower lag).
func (n *Node) observeLag(peer string, end, pos uint64) {
	n.mu.Lock()
	if end > pos {
		n.lag[peer] = end - pos
	} else {
		n.lag[peer] = 0
	}
	n.mu.Unlock()
}

// acceptLoop is the primary side: it serves replication connections
// from followers until the listener closes.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.stopCh:
				return
			default:
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serveRepl(conn)
		}()
	}
}

// serveRepl handles one inbound replication connection: handshake,
// then pulls, state requests and frontier queries until the peer hangs
// up.
func (n *Node) serveRepl(conn net.Conn) {
	defer conn.Close()

	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-n.stopCh:
			conn.Close()
		case <-done:
		}
	}()

	conn.SetReadDeadline(time.Now().Add(dialTimeout))
	b, err := wire.ReadReplFrame(conn)
	if err != nil {
		return
	}
	hello, err := wire.ParseReplHello(b)
	if err != nil {
		n.cfg.Logf("cluster: node %s: bad replication handshake from %s: %v", n.cfg.NodeID, conn.RemoteAddr(), err)
		return
	}
	welcome := wire.ReplWelcome{
		Status: wire.StatusOK,
		NodeID: n.cfg.NodeID,
		Shards: uint32(n.cfg.Shards),
		End:    n.cfg.Log.End(),
	}
	if err := wire.WriteReplFrame(conn, welcome.Encode()); err != nil {
		return
	}
	n.touch(hello.NodeID)

	for {
		conn.SetReadDeadline(time.Time{})
		b, err := wire.ReadReplFrame(conn)
		if err != nil {
			return
		}
		kind, pull, err := wire.ParseReplRequest(b)
		if err != nil {
			n.cfg.Logf("cluster: node %s: bad replication request from %s: %v", n.cfg.NodeID, hello.NodeID, err)
			return
		}
		n.touch(hello.NodeID)
		var payload []byte
		switch kind {
		case wire.ReplPull:
			payload = n.servePull(hello.NodeID, pull).Encode()
		case wire.ReplState:
			// Cover BEFORE peek, exactly like WriteSnapshot: every
			// record at or below the captured end was applied before
			// the peek, so the image reflects it; records above it may
			// or may not be in the image and re-deliver on the next
			// pull, where version-skipping absorbs them. Peeking first
			// would invert that into a silent gap.
			cover := n.cfg.Log.End()
			img := n.cfg.Backend.StateImage()
			payload = wire.StateResponse{
				Status:    wire.StatusOK,
				ResumeLSN: cover,
				Image:     durable.EncodeState(img),
			}.Encode()
		case wire.ReplFrontier:
			vers, epochs := n.cfg.Backend.Frontier()
			payload = wire.FrontierResponse{Status: wire.StatusOK, Vers: vers, Epochs: epochs}.Encode()
		}
		if err := wire.WriteReplFrame(conn, payload); err != nil {
			return
		}
	}
}

// servePull answers one pull: register the piggybacked ack (quorum
// progress + retention pin + liveness), then read a batch from the
// local WAL, long-polling when the follower is caught up.
func (n *Node) servePull(from string, req wire.PullRequest) wire.PullResponse {
	n.registerAck(from, req.AckLSN)

	max := int(req.MaxRecords)
	if max <= 0 || max > wire.MaxPullRecords {
		max = wire.MaxPullRecords
	}
	recs, pos, err := n.cfg.Log.ReadRecords(req.FromLSN, max)
	if err == nil && len(recs) == 0 && pos == req.FromLSN && req.WaitMillis > 0 {
		// Caught up: park until the log grows or the poll budget ends.
		n.cfg.Log.WaitEnd(req.FromLSN+1, time.Duration(req.WaitMillis)*time.Millisecond)
		recs, pos, err = n.cfg.Log.ReadRecords(req.FromLSN, max)
	}
	if errors.Is(err, durable.ErrPruned) {
		return wire.PullResponse{Status: wire.StatusOK, Pruned: true, ResumeLSN: req.FromLSN, End: n.cfg.Log.End()}
	}
	if err != nil {
		n.cfg.Logf("cluster: node %s: reading log for %s: %v", n.cfg.NodeID, from, err)
		return wire.PullResponse{Status: wire.StatusInternal, ResumeLSN: req.FromLSN, End: n.cfg.Log.End()}
	}
	return wire.PullResponse{Status: wire.StatusOK, Records: recs, ResumeLSN: pos, End: n.cfg.Log.End()}
}

// registerAck folds a follower's durable-LSN ack into quorum progress
// and moves (or creates) its retention pin.
func (n *Node) registerAck(from string, ack uint64) {
	n.quorum.recordAck(from, ack)
	n.mu.Lock()
	pin, ok := n.pins[from]
	if !ok {
		n.pins[from] = n.cfg.Log.Pin(ack)
	}
	n.mu.Unlock()
	if ok {
		n.cfg.Log.UpdatePin(pin, ack)
	}
}
