package cluster

import (
	"testing"
	"time"
)

func TestRingDeterministicAndComplete(t *testing.T) {
	a, err := NewRing([]string{"c", "a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"b", "c", "a"}) // order must not matter
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for s := uint32(0); s < 64; s++ {
		oa, ob := a.Owner(s), b.Owner(s)
		if oa != ob {
			t.Fatalf("shard %d: ring differs by construction order: %q vs %q", s, oa, ob)
		}
		seen[oa]++
	}
	// 64 vnodes per node should spread 64 shards across all 3 members.
	for _, n := range []string{"a", "b", "c"} {
		if seen[n] == 0 {
			t.Errorf("node %s owns no shards: %v", n, seen)
		}
	}
	if _, err := NewRing([]string{"a", "a"}); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := NewRing(nil); err == nil {
		t.Fatal("empty ring accepted")
	}
}

func TestRingFailoverSuccession(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	all := func(string) bool { return true }
	for s := uint32(0); s < 32; s++ {
		owner := r.Owner(s)
		if got := r.OwnerAmong(s, all); got != owner {
			t.Fatalf("shard %d: full-alive OwnerAmong %q != Owner %q", s, got, owner)
		}
		// Kill the owner: the shard must move to a different live node,
		// and every other shard with a live owner must not move.
		without := func(id string) bool { return id != owner }
		next := r.OwnerAmong(s, without)
		if next == owner || next == "" {
			t.Fatalf("shard %d: no successor after %q died (got %q)", s, owner, next)
		}
		for o := uint32(0); o < 32; o++ {
			if r.Owner(o) != owner {
				if moved := r.OwnerAmong(o, without); moved != r.Owner(o) {
					t.Fatalf("shard %d moved (%q -> %q) although its owner %q is alive",
						o, r.Owner(o), moved, owner)
				}
			}
		}
	}
	// Nobody alive: no owner.
	if got := r.OwnerAmong(0, func(string) bool { return false }); got != "" {
		t.Fatalf("owner %q among no live nodes", got)
	}
}

func TestQuorumPrefixDurabilityInvariant(t *testing.T) {
	q := newQuorumTracker(2) // self + 1 follower

	// Not reached yet: times out.
	if err := q.wait(5, 20*time.Millisecond); err == nil {
		t.Fatal("quorum reported before any follower ack")
	}

	// A concurrent waiter at 5 is released by an ack at 7 — and the
	// prefix invariant holds: once 7 is quorum-acked, every LSN <= 7
	// must be too, immediately.
	done := make(chan error, 1)
	go func() { done <- q.wait(5, 5*time.Second) }()
	q.recordAck("b", 7)
	if err := <-done; err != nil {
		t.Fatalf("wait(5) after ack(7): %v", err)
	}
	for lsn := uint64(1); lsn <= 7; lsn++ {
		if err := q.wait(lsn, 0); err != nil {
			t.Fatalf("prefix hole: LSN 7 quorum-acked but LSN %d is not: %v", lsn, err)
		}
	}
	if err := q.wait(8, 10*time.Millisecond); err == nil {
		t.Fatal("LSN above every ack reported quorum-durable")
	}

	// Acks never retreat: a reordered older ack cannot reopen LSN 7.
	q.recordAck("b", 3)
	if err := q.wait(7, 0); err != nil {
		t.Fatalf("stale ack retracted quorum: %v", err)
	}

	// Two distinct followers at quorum 3.
	q3 := newQuorumTracker(3)
	q3.recordAck("b", 9)
	q3.recordAck("b", 9) // same follower twice counts once
	if err := q3.wait(9, 10*time.Millisecond); err == nil {
		t.Fatal("one follower satisfied a 3-quorum")
	}
	q3.recordAck("c", 12)
	if err := q3.wait(9, time.Second); err != nil {
		t.Fatalf("two followers + self missed a 3-quorum: %v", err)
	}

	// close fails waiters.
	qc := newQuorumTracker(2)
	failed := make(chan error, 1)
	go func() { failed <- qc.wait(1, 5*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	qc.close(errTest)
	if err := <-failed; err == nil {
		t.Fatal("closed tracker released a waiter without error")
	}
}

var errTest = &testErr{}

type testErr struct{}

func (*testErr) Error() string { return "test error" }
