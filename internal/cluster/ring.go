// Package cluster is kexserved's node-level resilience layer: WAL
// replication with quorum acknowledgement, consistent-hash shard
// placement, and failure-detection-driven promotion, layered on
// internal/durable the way the k-exclusion wrapper is layered on a
// single object.
//
// The paper's construction makes one node's shared object resilient to
// up to k-1 *process* failures; this package extends the story to the
// node itself. The framing follows the related replication literature
// (PAPERS.md): replication is agreement on a log prefix, so the unit
// shipped between nodes is the same linearized WAL batch the durable
// layer group-commits, and a follower's continuously-replayed state is
// recoverable lock-object state — promotion resumes a warm object, it
// does not boot a cold one.
//
// Topology: every node is primary for the shards the ring places on it
// and follower for every other node. Followers PULL (they dial the
// peer's replication listener and long-poll for batches) rather than
// being pushed to: the ack-with-durable-LSN piggybacks on the next
// pull, pull cadence doubles as the liveness heartbeat, and the
// failure detector lands exactly where promotion must happen — in the
// follower that lost its primary.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodesPerNode is how many virtual points each node contributes to
// the ring: enough that a 3-node cluster splits shards near-evenly,
// few enough that Owner stays a binary search over a tiny array.
const vnodesPerNode = 64

// Ring is a consistent-hash placement of shards onto node IDs. It is
// immutable after New: membership is static (-peers), and what moves
// on failure is *service* of a dead node's shards (promotion), not
// their placement — so every node computes the identical ring from the
// identical peer list, with no agreement protocol.
type Ring struct {
	nodes  []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds the placement from the full peer ID list (order
// insignificant; duplicates rejected).
func NewRing(nodes []string) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("cluster: duplicate node id %q", sorted[i])
		}
	}
	r := &Ring{nodes: sorted}
	for _, n := range sorted {
		for v := 0; v < vnodesPerNode; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", n, v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (astronomically rare) break by node ID so every
		// node still computes the identical ring.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Nodes returns the member IDs, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Owner returns the node that serves shard when every node is alive.
func (r *Ring) Owner(shard uint32) string {
	return r.points[r.search(shard)].node
}

// OwnerAmong returns the node that serves shard given the set of nodes
// currently believed alive: the first live node at or after the
// shard's ring position. This is the promotion rule — with alive =
// all, it equals Owner; when an owner dies, its shards fall to the
// next live successor, and every node applying the same alive-set
// reaches the same verdict. Returns "" when alive is empty.
func (r *Ring) OwnerAmong(shard uint32, alive func(node string) bool) string {
	start := r.search(shard)
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if alive(p.node) {
			return p.node
		}
	}
	return ""
}

// search finds the index of the first ring point at or after the
// shard's hash (wrapping).
func (r *Ring) search(shard uint32) int {
	h := hash64(fmt.Sprintf("shard/%d", shard))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// FNV-1a mixes the low bits well but leaves the high bits of short,
	// similar keys ("a#1", "a#2"...) clustered — and ring placement
	// compares full 64-bit values, so clustered points collapse the
	// ring into bands and one node ends up owning everything. A
	// splitmix64-style finalizer avalanches every input bit across the
	// word.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
