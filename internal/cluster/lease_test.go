package cluster

import (
	"errors"
	"testing"
	"time"

	"kexclusion/internal/durable"
)

// stubBackend satisfies Backend for config-level tests that never
// start the node.
type stubBackend struct{}

func (stubBackend) ApplyReplicated([]durable.Record) (uint64, error) { return 0, nil }
func (stubBackend) WaitLocalDurable(uint64) error                    { return nil }
func (stubBackend) InstallState(map[uint32]durable.ShardState) (bool, error) {
	return true, nil
}
func (stubBackend) Frontier() (vers, epochs []uint64)         { return []uint64{0}, []uint64{0} }
func (stubBackend) StateImage() map[uint32]durable.ShardState { return nil }
func (stubBackend) BumpEpochs([]uint32) error                 { return nil }

func leaseTestConfig() Config {
	return Config{
		NodeID: "a",
		Peers: []Peer{
			{ID: "a", ClientAddr: "127.0.0.1:1", ReplAddr: "127.0.0.1:2"},
			{ID: "b", ClientAddr: "127.0.0.1:3", ReplAddr: "127.0.0.1:4"},
			{ID: "c", ClientAddr: "127.0.0.1:5", ReplAddr: "127.0.0.1:6"},
		},
		Shards:  4,
		Quorum:  2,
		Log:     new(durable.Log),
		Backend: stubBackend{},
	}
}

// TestLeaseConfigDefaults pins the lease's derived shape: half the
// failure-detector bound by default, and a pull long-poll clamped
// under half the lease so idle heartbeat traffic always outpaces
// expiry.
func TestLeaseConfigDefaults(t *testing.T) {
	c := leaseTestConfig()
	c.FailAfter = 2 * time.Second
	if err := c.fill(); err != nil {
		t.Fatal(err)
	}
	if c.LeaseDuration != time.Second {
		t.Fatalf("default LeaseDuration = %v, want FailAfter/2 = 1s", c.LeaseDuration)
	}
	if c.PullWait > c.LeaseDuration/2 {
		t.Fatalf("PullWait %v not clamped under LeaseDuration/2 = %v", c.PullWait, c.LeaseDuration/2)
	}

	// An explicit pull wait longer than the heartbeat budget is pulled
	// down, never honored.
	c = leaseTestConfig()
	c.FailAfter = time.Second
	c.LeaseDuration = 400 * time.Millisecond
	c.PullWait = 10 * time.Second
	if err := c.fill(); err != nil {
		t.Fatal(err)
	}
	if c.PullWait != 200*time.Millisecond {
		t.Fatalf("PullWait = %v, want clamp to LeaseDuration/2 = 200ms", c.PullWait)
	}
}

// TestLeaseMustUndercutFailAfter pins the safety ordering: lease >=
// fail-after would let a usurper promote while the deposed primary
// still believes itself leased, i.e. split-brain by configuration.
func TestLeaseMustUndercutFailAfter(t *testing.T) {
	for _, lease := range []time.Duration{time.Second, 2 * time.Second} {
		c := leaseTestConfig()
		c.FailAfter = time.Second
		c.LeaseDuration = lease
		if err := c.fill(); err == nil {
			t.Fatalf("fill accepted lease %v >= fail-after %v", lease, c.FailAfter)
		}
	}
}

// TestLeaseVacuousAtQuorumOne: a lone member (quorum 1) depends on no
// peers for acks, so it must not depend on them for its lease either.
func TestLeaseVacuousAtQuorumOne(t *testing.T) {
	n := &Node{
		cfg:       Config{Quorum: 1, LeaseDuration: time.Millisecond},
		lastSeen:  map[string]time.Time{},
		contacted: map[string]bool{},
	}
	if !n.LeaseHeld() {
		t.Fatal("quorum-1 node does not hold its vacuous lease")
	}
}

// TestLeaseWitnessRules pins who counts as a lease witness: a peer
// contacted within LeaseDuration does; a stale contact does not; and a
// boot-grace lastSeen stamp with no real contact never does — a
// freshly booted minority holds no lease it didn't earn.
func TestLeaseWitnessRules(t *testing.T) {
	now := time.Now()
	n := &Node{
		cfg: Config{Quorum: 2, LeaseDuration: 100 * time.Millisecond},
		lastSeen: map[string]time.Time{
			"b": now, // boot grace only: never contacted
		},
		contacted: map[string]bool{},
	}
	if n.leaseHeldLocked(now) {
		t.Fatal("boot-grace stamp counted as a lease witness")
	}
	n.contacted["b"] = true
	if !n.leaseHeldLocked(now) {
		t.Fatal("fresh real contact did not witness the lease")
	}
	if n.leaseHeldLocked(now.Add(150 * time.Millisecond)) {
		t.Fatal("contact older than LeaseDuration still witnessed the lease")
	}
}

// TestWaitQuorumFailsFastOnLeaseLoss is the expiry-races-quorum-wait
// contract at the tracker level: a primary whose lease lapses while an
// op waits for follower acks must refuse with ErrLeaseLost in
// ~LeaseDuration, not stall out the full QuorumTimeout — and certainly
// not ack.
func TestWaitQuorumFailsFastOnLeaseLoss(t *testing.T) {
	n := &Node{
		cfg: Config{
			NodeID:        "a",
			Quorum:        2,
			LeaseDuration: 100 * time.Millisecond,
			QuorumTimeout: 30 * time.Second,
		},
		quorum:    newQuorumTracker(2),
		lastSeen:  map[string]time.Time{"b": time.Now()},
		contacted: map[string]bool{"b": true},
	}
	start := time.Now()
	err := n.WaitQuorum(7) // no acks will ever arrive
	if !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("WaitQuorum under a lapsing lease = %v, want ErrLeaseLost", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("WaitQuorum took %v to notice the lapsed lease (QuorumTimeout is 30s; the lease slice must fail fast)", el)
	}
}

// TestWaitQuorumRechecksLeaseAfterSatisfaction: a quorum that fills in
// while (or after) the lease lapses must still refuse — the late ack
// proves durability, not that this node is still the writer.
func TestWaitQuorumRechecksLeaseAfterSatisfaction(t *testing.T) {
	n := &Node{
		cfg: Config{
			NodeID:        "a",
			Quorum:        2,
			LeaseDuration: 50 * time.Millisecond,
			QuorumTimeout: 30 * time.Second,
		},
		quorum:    newQuorumTracker(2),
		lastSeen:  map[string]time.Time{"b": time.Now()},
		contacted: map[string]bool{"b": true},
	}
	// The ack arrives only after the lease has lapsed.
	go func() {
		time.Sleep(120 * time.Millisecond)
		n.quorum.recordAck("b", 7)
	}()
	if err := n.WaitQuorum(7); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("WaitQuorum with a post-expiry ack = %v, want ErrLeaseLost", err)
	}
}

// TestWaitQuorumStillSucceedsUnderLiveLease: the fail-fast slicing
// must not break the happy path — acks arriving under a live lease
// release the waiter.
func TestWaitQuorumStillSucceedsUnderLiveLease(t *testing.T) {
	n := &Node{
		cfg: Config{
			NodeID:        "a",
			Quorum:        2,
			LeaseDuration: 10 * time.Second,
			QuorumTimeout: 30 * time.Second,
		},
		quorum:    newQuorumTracker(2),
		lastSeen:  map[string]time.Time{"b": time.Now()},
		contacted: map[string]bool{"b": true},
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		n.quorum.recordAck("b", 7)
	}()
	if err := n.WaitQuorum(7); err != nil {
		t.Fatalf("WaitQuorum under a live lease = %v, want success", err)
	}
}
