package machine

import "math/rand"

// Scheduler picks which runnable processor executes the next atomic step.
// The simulation driver calls Next with the set of processors that are
// currently able to take a step; Next must return the index of one of them.
type Scheduler interface {
	Next(step int, runnable []bool) int
}

// RoundRobin cycles through processors in index order, skipping
// non-runnable ones. It is the canonical fair scheduler used by the
// starvation-freedom experiments.
type RoundRobin struct {
	last int
}

// NewRoundRobin returns a fair round-robin scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{last: -1} }

// Next implements Scheduler.
func (r *RoundRobin) Next(_ int, runnable []bool) int {
	n := len(runnable)
	for i := 1; i <= n; i++ {
		p := (r.last + i) % n
		if runnable[p] {
			r.last = p
			return p
		}
	}
	return -1
}

// Random picks a uniformly random runnable processor using a seeded
// source, so runs are reproducible. Randomized scheduling over many seeds
// is the worst-case search used by the complexity experiments.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a seeded random scheduler.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Next implements Scheduler.
func (r *Random) Next(_ int, runnable []bool) int {
	count := 0
	for _, ok := range runnable {
		if ok {
			count++
		}
	}
	if count == 0 {
		return -1
	}
	pick := r.rng.Intn(count)
	for p, ok := range runnable {
		if !ok {
			continue
		}
		if pick == 0 {
			return p
		}
		pick--
	}
	return -1
}

// Burst runs each scheduled processor for a random-length burst of
// consecutive steps before switching. Bursts maximize the window in which
// one process can overwrite state another process is about to act on,
// which empirically elicits the worst-case remote-reference paths (e.g. a
// releaser racing a fresh waiter on the Figure 2 spin word).
type Burst struct {
	rng      *rand.Rand
	current  int
	remain   int
	maxBurst int
}

// NewBurst returns a seeded burst scheduler with bursts of up to maxBurst
// consecutive steps per processor.
func NewBurst(seed int64, maxBurst int) *Burst {
	if maxBurst < 1 {
		maxBurst = 1
	}
	return &Burst{
		rng:      rand.New(rand.NewSource(seed)),
		current:  -1,
		maxBurst: maxBurst,
	}
}

// Next implements Scheduler.
func (b *Burst) Next(_ int, runnable []bool) int {
	if b.current >= 0 && b.current < len(runnable) && b.remain > 0 && runnable[b.current] {
		b.remain--
		return b.current
	}
	count := 0
	for _, ok := range runnable {
		if ok {
			count++
		}
	}
	if count == 0 {
		return -1
	}
	pick := b.rng.Intn(count)
	for p, ok := range runnable {
		if !ok {
			continue
		}
		if pick == 0 {
			b.current = p
			b.remain = b.rng.Intn(b.maxBurst)
			return p
		}
		pick--
	}
	return -1
}
