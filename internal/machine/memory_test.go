package machine

import (
	"testing"
	"testing/quick"
)

func TestCacheCoherentReadCaching(t *testing.T) {
	m := NewMem(CacheCoherent, 2)
	a := m.Alloc1(HomeShared)

	if m.Read(0, a) != 0 {
		t.Fatal("fresh word must read 0")
	}
	if got := m.Stats(0); got.Remote != 1 || got.Local != 0 {
		t.Fatalf("first read must be remote, got %+v", got)
	}
	m.Read(0, a)
	m.Read(0, a)
	if got := m.Stats(0); got.Remote != 1 || got.Local != 2 {
		t.Fatalf("cached reads must be local, got %+v", got)
	}
}

func TestCacheCoherentWriteInvalidates(t *testing.T) {
	m := NewMem(CacheCoherent, 3)
	a := m.Alloc1(HomeShared)

	m.Read(0, a) // proc 0 caches the word
	m.Read(2, a) // proc 2 caches the word
	m.Write(1, a, 7)
	if got := m.Stats(1); got.Remote != 1 {
		t.Fatalf("write must be remote, got %+v", got)
	}
	// Both other caches were invalidated: next reads are remote again.
	if m.Read(0, a) != 7 {
		t.Fatal("read must observe the write")
	}
	if got := m.Stats(0); got.Remote != 2 {
		t.Fatalf("post-invalidation read must be remote, got %+v", got)
	}
	// The writer retained a valid copy: its read is local.
	m.Read(1, a)
	if got := m.Stats(1); got.Local != 1 {
		t.Fatalf("writer's own re-read must be local, got %+v", got)
	}
	if m.Read(2, a) != 7 {
		t.Fatal("read must observe the write")
	}
	if got := m.Stats(2); got.Remote != 2 {
		t.Fatalf("proc 2 post-invalidation read must be remote, got %+v", got)
	}
}

func TestCacheCoherentSpinCostsAtMostTwoRemote(t *testing.T) {
	// The paper's §2 assumption: a loop "while Q = p do" generates at
	// most two remote references — one to cache the word and one after
	// the releasing write invalidates the copy.
	m := NewMem(CacheCoherent, 2)
	q := m.Alloc1(HomeShared)
	m.Poke(q, 0) // proc 0 spins while Q = 0

	spins := 0
	for m.Read(0, q) == 0 {
		spins++
		if spins == 50 {
			m.Write(1, q, 1) // releaser breaks the loop
		}
		if spins > 100 {
			t.Fatal("spin never released")
		}
	}
	if got := m.Stats(0).Remote; got != 2 {
		t.Fatalf("spin loop generated %d remote references, paper model says 2", got)
	}
}

func TestDistributedHomeClassification(t *testing.T) {
	m := NewMem(Distributed, 4)
	local := m.Alloc1(2)
	global := m.Alloc1(HomeShared)

	m.Read(2, local)
	m.Write(2, local, 1)
	if got := m.Stats(2); got.Local != 2 || got.Remote != 0 {
		t.Fatalf("home accesses must be local, got %+v", got)
	}
	m.Read(3, local)
	if got := m.Stats(3); got.Remote != 1 {
		t.Fatalf("non-home access must be remote, got %+v", got)
	}
	m.Read(2, global)
	if got := m.Stats(2); got.Remote != 1 {
		t.Fatalf("HomeShared word must be remote to everyone, got %+v", got)
	}
}

func TestDistributedLocalSpinIsFree(t *testing.T) {
	m := NewMem(Distributed, 2)
	p0flag := m.Alloc1(0)

	for i := 0; i < 1000; i++ {
		m.Read(0, p0flag)
	}
	if got := m.Stats(0); got.Remote != 0 || got.Local != 1000 {
		t.Fatalf("spin on home word must cost 0 remote refs, got %+v", got)
	}
	m.Write(1, p0flag, 1)
	if got := m.Stats(1); got.Remote != 1 {
		t.Fatalf("releaser's write must be 1 remote ref, got %+v", got)
	}
}

func TestFAA(t *testing.T) {
	m := NewMem(Distributed, 2)
	a := m.Alloc1(HomeShared)
	m.Poke(a, 5)

	if old := m.FAA(0, a, -1); old != 5 {
		t.Fatalf("FAA old = %d, want 5", old)
	}
	if m.Peek(a) != 4 {
		t.Fatalf("FAA result = %d, want 4", m.Peek(a))
	}
	if old := m.FAA(1, a, 3); old != 4 || m.Peek(a) != 7 {
		t.Fatalf("FAA add: old=%d val=%d", old, m.Peek(a))
	}
}

func TestFAADec0BoundedAtZero(t *testing.T) {
	m := NewMem(CacheCoherent, 1)
	a := m.Alloc1(HomeShared)
	m.Poke(a, 1)

	if old := m.FAADec0(0, a); old != 1 || m.Peek(a) != 0 {
		t.Fatalf("first dec: old=%d val=%d", old, m.Peek(a))
	}
	// Footnote 2: decrementing a zero word leaves it unchanged.
	if old := m.FAADec0(0, a); old != 0 || m.Peek(a) != 0 {
		t.Fatalf("dec at zero: old=%d val=%d", old, m.Peek(a))
	}
}

func TestSwap(t *testing.T) {
	m := NewMem(Distributed, 2)
	a := m.Alloc1(HomeShared)
	m.Poke(a, 5)

	if old := m.Swap(0, a, 9); old != 5 || m.Peek(a) != 9 {
		t.Fatalf("swap: old=%d val=%d", old, m.Peek(a))
	}
	if got := m.Stats(0); got.Remote != 1 {
		t.Fatalf("swap must be one remote RMW, got %+v", got)
	}
	// Under CC, swap invalidates other copies like any write.
	mc := NewMem(CacheCoherent, 2)
	b := mc.Alloc1(HomeShared)
	mc.Read(1, b)
	mc.Swap(0, b, 3)
	mc.Read(1, b)
	if got := mc.Stats(1); got.Remote != 2 {
		t.Fatalf("post-swap read must be remote, got %+v", got)
	}
}

func TestCAS(t *testing.T) {
	m := NewMem(CacheCoherent, 2)
	a := m.Alloc1(HomeShared)
	m.Poke(a, 10)

	if !m.CAS(0, a, 10, 20) {
		t.Fatal("matching CAS must succeed")
	}
	if m.CAS(1, a, 10, 30) {
		t.Fatal("stale CAS must fail")
	}
	if m.Peek(a) != 20 {
		t.Fatalf("value = %d, want 20", m.Peek(a))
	}
	// Failed CAS is still a remote RMW.
	if got := m.Stats(1); got.Remote != 1 {
		t.Fatalf("failed CAS must be remote, got %+v", got)
	}
}

func TestTAS(t *testing.T) {
	m := NewMem(CacheCoherent, 2)
	a := m.Alloc1(HomeShared)

	if !m.TAS(0, a) {
		t.Fatal("first TAS must win")
	}
	if m.TAS(1, a) {
		t.Fatal("second TAS must lose")
	}
	m.Write(0, a, 0)
	if !m.TAS(1, a) {
		t.Fatal("TAS after clear must win")
	}
}

func TestSnapshotRestore(t *testing.T) {
	m := NewMem(CacheCoherent, 2)
	a := m.Alloc(3, HomeShared)
	m.Write(0, a+1, 42)

	snap := m.SnapshotWords()
	m.Write(1, a+1, 99)
	m.Write(1, a+2, 7)
	m.RestoreWords(snap)
	if m.Peek(a+1) != 42 || m.Peek(a+2) != 0 {
		t.Fatalf("restore failed: %d %d", m.Peek(a+1), m.Peek(a+2))
	}
}

func TestHotWords(t *testing.T) {
	m := NewMem(Distributed, 2)
	hot := m.Alloc1(HomeShared)
	cold := m.Alloc1(HomeShared)
	local := m.Alloc1(0)

	for i := 0; i < 10; i++ {
		m.Read(1, hot)
	}
	m.Read(1, cold)
	m.Read(0, local) // local: no heat

	words := m.HotWords(0)
	if len(words) != 2 {
		t.Fatalf("expected 2 hot words, got %v", words)
	}
	if words[0].Addr != hot || words[0].Remote != 10 {
		t.Fatalf("hottest word wrong: %+v", words[0])
	}
	if words[1].Addr != cold || words[1].Remote != 1 {
		t.Fatalf("second word wrong: %+v", words[1])
	}
	if top := m.HotWords(1); len(top) != 1 || top[0].Addr != hot {
		t.Fatalf("top-1 wrong: %v", top)
	}
	m.ResetStats()
	if len(m.HotWords(0)) != 0 {
		t.Fatal("heat map must clear with ResetStats")
	}
}

func TestAllocHomes(t *testing.T) {
	m := NewMem(Distributed, 3)
	a := m.Alloc(2, 1)
	b := m.Alloc1(HomeShared)
	if m.Home(a) != 1 || m.Home(a+1) != 1 {
		t.Fatal("wrong home for allocated block")
	}
	if m.Home(b) != HomeShared {
		t.Fatal("wrong home for shared word")
	}
	if a == b || int(b) != 2 {
		t.Fatalf("allocation layout wrong: a=%d b=%d", a, b)
	}
}

// Property: under the CC model, a read immediately after a read by the
// same processor with no intervening write is always local, for any
// operation sequence.
func TestQuickCCSecondReadLocal(t *testing.T) {
	f := func(ops []uint8) bool {
		m := NewMem(CacheCoherent, 3)
		a := m.Alloc(4, HomeShared)
		for _, op := range ops {
			p := int(op>>4) % 3
			addr := a + Addr(int(op>>2)%4)
			switch op % 4 {
			case 0, 1:
				m.Read(p, addr)
				before := m.Stats(p)
				m.Read(p, addr)
				after := m.Stats(p)
				if after.Local != before.Local+1 {
					return false
				}
			case 2:
				m.Write(p, addr, int64(op))
			case 3:
				m.FAA(p, addr, 1)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: in the DSM model remote/local classification depends only on
// the home, never on history.
func TestQuickDSMClassification(t *testing.T) {
	f := func(ops []uint8) bool {
		const procs = 4
		m := NewMem(Distributed, procs)
		addrs := make([]Addr, procs+1)
		for i := 0; i < procs; i++ {
			addrs[i] = m.Alloc1(i)
		}
		addrs[procs] = m.Alloc1(HomeShared)
		for _, op := range ops {
			p := int(op>>4) % procs
			ai := int(op>>1) % (procs + 1)
			before := m.Stats(p)
			if op%2 == 0 {
				m.Read(p, addrs[ai])
			} else {
				m.Write(p, addrs[ai], 1)
			}
			after := m.Stats(p)
			wantLocal := ai == p
			if wantLocal && after.Local != before.Local+1 {
				return false
			}
			if !wantLocal && after.Remote != before.Remote+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
