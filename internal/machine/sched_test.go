package machine

import "testing"

func TestRoundRobinFair(t *testing.T) {
	s := NewRoundRobin()
	runnable := []bool{true, true, true}
	counts := make([]int, 3)
	for i := 0; i < 300; i++ {
		p := s.Next(i, runnable)
		counts[p]++
	}
	for p, c := range counts {
		if c != 100 {
			t.Fatalf("proc %d scheduled %d times, want 100", p, c)
		}
	}
}

func TestRoundRobinSkipsBlocked(t *testing.T) {
	s := NewRoundRobin()
	runnable := []bool{false, true, false, true}
	for i := 0; i < 10; i++ {
		p := s.Next(i, runnable)
		if p != 1 && p != 3 {
			t.Fatalf("scheduled non-runnable proc %d", p)
		}
	}
}

func TestRoundRobinAllBlocked(t *testing.T) {
	s := NewRoundRobin()
	if p := s.Next(0, []bool{false, false}); p != -1 {
		t.Fatalf("expected -1, got %d", p)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	runnable := []bool{true, true, true, true}
	a, b := NewRandom(42), NewRandom(42)
	for i := 0; i < 100; i++ {
		if x, y := a.Next(i, runnable), b.Next(i, runnable); x != y {
			t.Fatalf("step %d: same seed diverged (%d vs %d)", i, x, y)
		}
	}
}

func TestRandomOnlyPicksRunnable(t *testing.T) {
	s := NewRandom(7)
	runnable := []bool{false, true, false, true, false}
	for i := 0; i < 200; i++ {
		p := s.Next(i, runnable)
		if !runnable[p] {
			t.Fatalf("picked non-runnable proc %d", p)
		}
	}
}

func TestRandomAllBlocked(t *testing.T) {
	s := NewRandom(1)
	if p := s.Next(0, []bool{false}); p != -1 {
		t.Fatalf("expected -1, got %d", p)
	}
}

func TestBurstOnlyPicksRunnable(t *testing.T) {
	s := NewBurst(11, 8)
	runnable := []bool{true, false, true}
	for i := 0; i < 500; i++ {
		p := s.Next(i, runnable)
		if p < 0 || !runnable[p] {
			t.Fatalf("picked non-runnable proc %d", p)
		}
	}
}

func TestBurstSwitchesWhenCurrentBlocks(t *testing.T) {
	s := NewBurst(3, 100)
	runnable := []bool{true, true}
	first := s.Next(0, runnable)
	runnable[first] = false
	next := s.Next(1, runnable)
	if next == first {
		t.Fatal("burst scheduler stuck on blocked proc")
	}
}
