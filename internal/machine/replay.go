package machine

// Recorder wraps a scheduler and records every decision, so that a run
// that exposes a bug (e.g. found by a randomized or property-based test)
// can be replayed deterministically with NewReplay — even after the
// inner scheduler's seed or implementation changes.
type Recorder struct {
	inner Scheduler
	log   []int32
}

// NewRecorder wraps inner with decision recording.
func NewRecorder(inner Scheduler) *Recorder {
	return &Recorder{inner: inner}
}

// Next implements Scheduler.
func (r *Recorder) Next(step int, runnable []bool) int {
	p := r.inner.Next(step, runnable)
	r.log = append(r.log, int32(p))
	return p
}

// Log returns the recorded schedule (a copy).
func (r *Recorder) Log() []int32 {
	return append([]int32(nil), r.log...)
}

// Replay replays a recorded schedule. When the recorded process is no
// longer runnable (because the program changed) or the log is exhausted,
// it falls back to round-robin and reports the divergence.
type Replay struct {
	log      []int32
	pos      int
	fallback *RoundRobin
	diverged bool
}

// NewReplay builds a scheduler replaying log.
func NewReplay(log []int32) *Replay {
	return &Replay{log: append([]int32(nil), log...), fallback: NewRoundRobin()}
}

// Diverged reports whether the replay had to fall back to round-robin.
func (r *Replay) Diverged() bool { return r.diverged }

// Next implements Scheduler.
func (r *Replay) Next(step int, runnable []bool) int {
	if r.pos < len(r.log) {
		p := int(r.log[r.pos])
		r.pos++
		if p >= 0 && p < len(runnable) && runnable[p] {
			return p
		}
		r.diverged = true
	} else {
		r.diverged = true
	}
	return r.fallback.Next(step, runnable)
}
