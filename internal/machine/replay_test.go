package machine

import "testing"

func TestRecorderCapturesDecisions(t *testing.T) {
	rec := NewRecorder(NewRoundRobin())
	runnable := []bool{true, true, true}
	var want []int32
	for i := 0; i < 9; i++ {
		want = append(want, int32(rec.Next(i, runnable)))
	}
	log := rec.Log()
	if len(log) != 9 {
		t.Fatalf("log length %d, want 9", len(log))
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log[%d] = %d, want %d", i, log[i], want[i])
		}
	}
	// The returned log is a copy.
	log[0] = 99
	if rec.Log()[0] == 99 {
		t.Fatal("Log must return a copy")
	}
}

func TestReplayFaithful(t *testing.T) {
	rec := NewRecorder(NewRandom(5))
	runnable := []bool{true, true, true, true}
	for i := 0; i < 50; i++ {
		rec.Next(i, runnable)
	}
	rep := NewReplay(rec.Log())
	other := NewRandom(5)
	for i := 0; i < 50; i++ {
		if got, want := rep.Next(i, runnable), other.Next(i, runnable); got != want {
			t.Fatalf("step %d: replay %d, want %d", i, got, want)
		}
	}
	if rep.Diverged() {
		t.Fatal("faithful replay reported divergence")
	}
}

func TestReplayDivergenceFallsBack(t *testing.T) {
	rep := NewReplay([]int32{2, 2, 2})
	runnable := []bool{true, true, false} // proc 2 not runnable
	p := rep.Next(0, runnable)
	if !rep.Diverged() {
		t.Fatal("divergence not reported")
	}
	if p != 0 && p != 1 {
		t.Fatalf("fallback chose non-runnable %d", p)
	}
	// Log exhaustion also diverges gracefully.
	rep2 := NewReplay(nil)
	if p := rep2.Next(0, []bool{true}); p != 0 || !rep2.Diverged() {
		t.Fatal("empty-log replay must fall back")
	}
}
