// Package machine simulates the two shared-memory multiprocessor models of
// Anderson & Moir (PODC 1994), §2: cache-coherent machines and distributed
// shared-memory machines without coherent caches. Its sole job is to execute
// atomic operations on a flat word-addressed memory while classifying each
// operation as a local or a remote reference, which is the complexity
// measure every result in the paper is stated in.
package machine

import "fmt"

// Model selects the memory cost model.
type Model int

const (
	// CacheCoherent models a machine where a read misses at most once:
	// the first read of a word by a processor is remote and installs a
	// cached copy; subsequent reads are local until another processor
	// writes the word, which invalidates all other copies. Writes and
	// read-modify-writes are always remote (they traverse the
	// interconnect) and leave the writer holding a valid copy.
	CacheCoherent Model = iota + 1

	// Distributed models a machine where every word is stored in the
	// local memory of exactly one processor. An access is local iff the
	// acting processor is the word's home; there are no caches.
	Distributed
)

func (m Model) String() string {
	switch m {
	case CacheCoherent:
		return "CC"
	case Distributed:
		return "DSM"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// HomeShared marks a word with no local home: remote to every processor
// under the Distributed model. This models global variables that the
// paper's DSM analyses charge as remote for all processes.
const HomeShared = -1

// Addr is an index into simulated shared memory.
type Addr int

// Stats counts memory references issued by one processor.
type Stats struct {
	Local  uint64
	Remote uint64
}

// Total returns the total number of references.
func (s Stats) Total() uint64 { return s.Local + s.Remote }

// Mem is a simulated shared memory shared by nproc processors.
// It is not safe for concurrent use: the simulation driver serializes
// steps, which is what makes each operation atomic.
type Mem struct {
	model Model
	nproc int
	words []int64
	home  []int32
	// valid[p*len(words)+a] reports whether processor p holds a valid
	// cached copy of word a (CacheCoherent only).
	valid []bool
	stats []Stats
	// heat[a] counts remote references to word a across all
	// processors, for hotspot diagnostics.
	heat []uint64
}

// NewMem creates a memory with no words allocated yet.
func NewMem(model Model, nproc int) *Mem {
	if model != CacheCoherent && model != Distributed {
		panic(fmt.Sprintf("machine: invalid model %d", model))
	}
	if nproc <= 0 {
		panic("machine: nproc must be positive")
	}
	return &Mem{
		model: model,
		nproc: nproc,
		stats: make([]Stats, nproc),
	}
}

// Model reports the memory's cost model.
func (m *Mem) Model() Model { return m.model }

// Procs reports the number of processors.
func (m *Mem) Procs() int { return m.nproc }

// Size reports the number of allocated words.
func (m *Mem) Size() int { return len(m.words) }

// Alloc reserves n consecutive words with the given home processor
// (HomeShared for globally shared words) and returns the base address.
// All words are zero-initialized.
func (m *Mem) Alloc(n int, home int) Addr {
	if n <= 0 {
		panic("machine: Alloc size must be positive")
	}
	if home != HomeShared && (home < 0 || home >= m.nproc) {
		panic(fmt.Sprintf("machine: invalid home %d", home))
	}
	base := Addr(len(m.words))
	for i := 0; i < n; i++ {
		m.words = append(m.words, 0)
		m.home = append(m.home, int32(home))
		m.heat = append(m.heat, 0)
	}
	// Reset the cache map: addresses shifted capacity; rebuild lazily.
	m.valid = nil
	return base
}

// Alloc1 reserves a single word and returns its address.
func (m *Mem) Alloc1(home int) Addr { return m.Alloc(1, home) }

// Home reports the home processor of addr (HomeShared if none).
func (m *Mem) Home(a Addr) int { return int(m.home[a]) }

// Stats returns the reference counts accumulated by processor p.
func (m *Mem) Stats(p int) Stats { return m.stats[p] }

// ResetStats zeroes all reference counters, heat map included.
func (m *Mem) ResetStats() {
	for i := range m.stats {
		m.stats[i] = Stats{}
	}
	for i := range m.heat {
		m.heat[i] = 0
	}
}

// HotWord is one entry of the remote-reference heat map.
type HotWord struct {
	Addr   Addr
	Remote uint64
	Home   int
}

// HotWords returns the top-n words by remote references, hottest first —
// the simulated analogue of a coherence-traffic profile. It shows, for
// example, that the Figure 2 chain's heat concentrates on each layer's X
// and Q, while spinfaa's concentrates on a single counter.
func (m *Mem) HotWords(n int) []HotWord {
	out := make([]HotWord, 0, len(m.heat))
	for a, h := range m.heat {
		if h > 0 {
			out = append(out, HotWord{Addr: Addr(a), Remote: h, Home: int(m.home[a])})
		}
	}
	// Insertion sort by heat descending (lists are small).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Remote > out[j-1].Remote; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

func (m *Mem) ensureCache() {
	if m.valid == nil {
		m.valid = make([]bool, m.nproc*len(m.words))
	}
}

func (m *Mem) checkAccess(p int, a Addr) {
	if p < 0 || p >= m.nproc {
		panic(fmt.Sprintf("machine: invalid processor %d", p))
	}
	if a < 0 || int(a) >= len(m.words) {
		panic(fmt.Sprintf("machine: address %d out of range [0,%d)", a, len(m.words)))
	}
}

// chargeRead classifies a read by processor p of word a.
func (m *Mem) chargeRead(p int, a Addr) {
	switch m.model {
	case Distributed:
		if int(m.home[a]) == p {
			m.stats[p].Local++
		} else {
			m.stats[p].Remote++
			m.heat[a]++
		}
	case CacheCoherent:
		m.ensureCache()
		idx := p*len(m.words) + int(a)
		if m.valid[idx] {
			m.stats[p].Local++
		} else {
			m.stats[p].Remote++
			m.heat[a]++
			m.valid[idx] = true
		}
	}
}

// chargeWrite classifies a write (or read-modify-write) by processor p of
// word a. Under CacheCoherent the write invalidates every other
// processor's copy and leaves the writer with a valid copy.
func (m *Mem) chargeWrite(p int, a Addr) {
	switch m.model {
	case Distributed:
		if int(m.home[a]) == p {
			m.stats[p].Local++
		} else {
			m.stats[p].Remote++
			m.heat[a]++
		}
	case CacheCoherent:
		m.ensureCache()
		m.stats[p].Remote++
		m.heat[a]++
		words := len(m.words)
		for q := 0; q < m.nproc; q++ {
			m.valid[q*words+int(a)] = q == p
		}
	}
}

// Read returns the value of word a, charging processor p.
func (m *Mem) Read(p int, a Addr) int64 {
	m.checkAccess(p, a)
	m.chargeRead(p, a)
	return m.words[a]
}

// Write sets word a to v, charging processor p.
func (m *Mem) Write(p int, a Addr, v int64) {
	m.checkAccess(p, a)
	m.chargeWrite(p, a)
	m.words[a] = v
}

// FAA atomically adds d to word a and returns the previous value
// (the paper's fetch_and_increment).
func (m *Mem) FAA(p int, a Addr, d int64) int64 {
	m.checkAccess(p, a)
	m.chargeWrite(p, a)
	old := m.words[a]
	m.words[a] = old + d
	return old
}

// FAADec0 is the bounded decrement assumed by the paper's Figure 4
// (footnote 2): it decrements word a unless it is already zero, and
// returns the previous value either way.
func (m *Mem) FAADec0(p int, a Addr) int64 {
	m.checkAccess(p, a)
	m.chargeWrite(p, a)
	old := m.words[a]
	if old > 0 {
		m.words[a] = old - 1
	}
	return old
}

// Swap atomically stores v into word a and returns the previous value
// (fetch&store, the primitive of the MCS queue lock).
func (m *Mem) Swap(p int, a Addr, v int64) int64 {
	m.checkAccess(p, a)
	m.chargeWrite(p, a)
	old := m.words[a]
	m.words[a] = v
	return old
}

// CAS atomically replaces word a with new if it equals old, reporting
// whether the swap happened. A failed CAS is still charged as a remote
// read-modify-write, matching interconnect behaviour.
func (m *Mem) CAS(p int, a Addr, old, new int64) bool {
	m.checkAccess(p, a)
	m.chargeWrite(p, a)
	if m.words[a] != old {
		return false
	}
	m.words[a] = new
	return true
}

// TAS atomically sets word a to 1 and reports whether it was 0 before
// (i.e. whether the caller won the bit).
func (m *Mem) TAS(p int, a Addr) bool {
	m.checkAccess(p, a)
	m.chargeWrite(p, a)
	if m.words[a] != 0 {
		return false
	}
	m.words[a] = 1
	return true
}

// Peek reads word a without charging anyone. It is intended for test
// assertions, invariant checks and state snapshots, never for algorithms.
func (m *Mem) Peek(a Addr) int64 {
	if a < 0 || int(a) >= len(m.words) {
		panic(fmt.Sprintf("machine: address %d out of range", a))
	}
	return m.words[a]
}

// Poke writes word a without charging anyone; for initialization only.
func (m *Mem) Poke(a Addr, v int64) {
	if a < 0 || int(a) >= len(m.words) {
		panic(fmt.Sprintf("machine: address %d out of range", a))
	}
	m.words[a] = v
}

// SnapshotWords returns a copy of all words (for model checking).
func (m *Mem) SnapshotWords() []int64 {
	out := make([]int64, len(m.words))
	copy(out, m.words)
	return out
}

// RestoreWords overwrites memory contents from a snapshot taken with
// SnapshotWords. Cache state and statistics are cleared: model checking
// explores behaviour, not cost.
func (m *Mem) RestoreWords(w []int64) {
	if len(w) != len(m.words) {
		panic("machine: RestoreWords length mismatch")
	}
	copy(m.words, w)
	for i := range m.valid {
		m.valid[i] = false
	}
}
