package machine

import "testing"

func TestModelString(t *testing.T) {
	if CacheCoherent.String() != "CC" || Distributed.String() != "DSM" {
		t.Fatal("model strings wrong")
	}
	if Model(9).String() == "" {
		t.Fatal("unknown model must render")
	}
}

func TestMemAccessors(t *testing.T) {
	m := NewMem(CacheCoherent, 3)
	m.Alloc(5, HomeShared)
	if m.Model() != CacheCoherent || m.Procs() != 3 || m.Size() != 5 {
		t.Fatalf("accessors wrong: %v %d %d", m.Model(), m.Procs(), m.Size())
	}
	m.Read(0, 0)
	m.Read(0, 0)
	if got := m.Stats(0).Total(); got != 2 {
		t.Fatalf("Total = %d, want 2", got)
	}
}

func TestNewMemValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("bad model", func() { NewMem(Model(0), 2) })
	mustPanic("no procs", func() { NewMem(CacheCoherent, 0) })
	mustPanic("alloc zero", func() { NewMem(CacheCoherent, 1).Alloc(0, HomeShared) })
	mustPanic("alloc bad home", func() { NewMem(CacheCoherent, 1).Alloc(1, 7) })

	m := NewMem(Distributed, 2)
	m.Alloc1(0)
	mustPanic("read oob", func() { m.Read(0, 5) })
	mustPanic("bad proc", func() { m.Read(9, 0) })
	mustPanic("peek oob", func() { m.Peek(-1) })
	mustPanic("poke oob", func() { m.Poke(12, 1) })
	mustPanic("restore mismatch", func() { m.RestoreWords([]int64{1, 2, 3}) })
}

func TestNewBurstClampsBurstSize(t *testing.T) {
	s := NewBurst(1, 0) // clamped to 1
	runnable := []bool{true, true}
	for i := 0; i < 10; i++ {
		if p := s.Next(i, runnable); p < 0 || p > 1 {
			t.Fatalf("bad pick %d", p)
		}
	}
}
