// Package netfault is a deterministic chaos proxy for the kexserved
// wire protocol: a TCP relay that injects the network's failure modes —
// added latency, silent partitions, connection resets, mid-frame
// truncation — at planned byte offsets on planned connections.
//
// It is the network sibling of internal/faultinject: where that package
// crashes processes at planned points inside the entry/exit sections,
// this one breaks the links between live processes and the server, so
// the session watchdog, per-op deadlines, and client retry discipline
// can be driven through real sockets. Like faultinject, everything is a
// function of the Plan: a Rule names the connection (by accept order)
// it breaks, the fault kind, and the upstream byte offset at which it
// fires, so a seeded run is reproducible chunk for chunk (modulo kernel
// chunking of the streams, which the byte-offset trigger is immune to).
package netfault

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Action is the fault a Rule injects.
type Action int

const (
	// Forward relays bytes untouched (the implicit default for
	// connections without a rule).
	Forward Action = iota
	// Delay adds fixed latency ahead of every relayed chunk, both
	// directions — the slow link.
	Delay
	// Partition stops relaying in both directions after the trigger,
	// keeping both sockets open — the silent peer. Neither side gets a
	// FIN or RST; only deadlines can detect it.
	Partition
	// Reset hard-closes the client side (SO_LINGER=0, so an RST) at the
	// trigger and drops the server side.
	Reset
	// Truncate relays exactly the trigger offset's bytes upstream and
	// then closes both sides cleanly — cutting a frame in half when the
	// offset lands inside one.
	Truncate
)

var actionNames = map[Action]string{
	Forward:   "forward",
	Delay:     "delay",
	Partition: "partition",
	Reset:     "reset",
	Truncate:  "truncate",
}

func (a Action) String() string {
	if s, ok := actionNames[a]; ok {
		return s
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// ParseActions parses a comma-separated fault list ("partition,reset")
// for CLI flags. Forward is not a valid choice — a connection without a
// rule already forwards. An empty string is a valid empty list (a clean
// relay baseline).
func ParseActions(csv string) ([]Action, error) {
	var kinds []Action
	for _, field := range strings.Split(csv, ",") {
		name := strings.TrimSpace(field)
		if name == "" {
			continue
		}
		found := false
		for a, s := range actionNames {
			if s == name && a != Forward {
				kinds = append(kinds, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("netfault: unknown fault kind %q (want delay, partition, reset, truncate)", name)
		}
	}
	return kinds, nil
}

// Direction selects which way(s) of a proxy's links a runtime
// partition blocks. Unlike the planned per-connection Partition rule
// (permanent, one connection), a runtime partition covers every
// connection of the proxy, can block a single direction (the
// asymmetric-partition case real IP networks produce), and heals:
// bytes read while blocked are held, not dropped, and delivered on
// heal — modeling TCP retransmission carrying traffic across a healed
// IP partition with zero loss.
type Direction int

const (
	// Up blocks client-to-server bytes.
	Up Direction = 1 << iota
	// Down blocks server-to-client bytes.
	Down
)

// Both blocks both directions — the symmetric partition.
const Both = Up | Down

// Rule breaks one proxied connection.
type Rule struct {
	// Conn is the connection this rule arms, by accept order (0-based).
	Conn int
	// Act is the fault kind.
	Act Action
	// After is the upstream (client-to-server) byte offset at which the
	// fault fires; bytes up to the offset are relayed faithfully.
	// Ignored by Delay, which applies from the first chunk.
	After int64
	// Latency is Delay's added per-chunk latency.
	Latency time.Duration
}

// Plan is a seeded set of rules, at most one per connection.
type Plan struct {
	Seed  int64
	Rules []Rule
}

// NewPlan derives a deterministic plan: among conns connections, each
// fault kind in kinds is assigned to a distinct connection at a byte
// offset past the admission handshake (so every victim is admitted
// before its link breaks). Same seed, same plan.
func NewPlan(seed int64, conns int, kinds ...Action) Plan {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(conns)
	p := Plan{Seed: seed}
	for i, kind := range kinds {
		if i >= len(perm) {
			break
		}
		p.Rules = append(p.Rules, Rule{
			Conn: perm[i],
			Act:  kind,
			// One full request is 41 upstream bytes (4-byte length
			// prefix + 37-byte payload): fire inside request 2..4 so
			// the victim completes at least one operation first.
			After:   41 + rng.Int63n(3*41),
			Latency: time.Duration(1+rng.Int63n(5)) * time.Millisecond,
		})
	}
	sort.Slice(p.Rules, func(i, j int) bool { return p.Rules[i].Conn < p.Rules[j].Conn })
	return p
}

// rule finds the rule armed for connection index conn.
func (p Plan) rule(conn int) (Rule, bool) {
	for _, r := range p.Rules {
		if r.Conn == conn {
			return r, true
		}
	}
	return Rule{}, false
}

// String renders the plan for logs and CLI output.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "netfault plan seed=%d:", p.Seed)
	if len(p.Rules) == 0 {
		b.WriteString(" clean relay")
		return b.String()
	}
	for _, r := range p.Rules {
		switch r.Act {
		case Delay:
			fmt.Fprintf(&b, " conn%d:%s+%v", r.Conn, r.Act, r.Latency)
		default:
			fmt.Fprintf(&b, " conn%d:%s@%dB", r.Conn, r.Act, r.After)
		}
	}
	return b.String()
}

// Stats counts what the proxy has done. Snapshot via Proxy.Stats.
type Stats struct {
	// Accepted is how many connections the proxy has relayed.
	Accepted int64 `json:"accepted"`
	// Fired counts rules that have triggered, by action name.
	Partitions  int64 `json:"partitions"`
	Resets      int64 `json:"resets"`
	Truncations int64 `json:"truncations"`
	// DelayedChunks counts chunks that paid a Delay rule's latency.
	DelayedChunks int64 `json:"delayed_chunks"`
	// BytesUp and BytesDown are relayed byte totals (post-fault bytes
	// are never relayed, so a Truncate rule caps its connection's
	// upstream count at the trigger offset).
	BytesUp   int64 `json:"bytes_up"`
	BytesDown int64 `json:"bytes_down"`
}

// Proxy is one listening chaos relay in front of a target address.
type Proxy struct {
	target string
	plan   Plan
	ln     net.Listener

	accepted      atomic.Int64
	partitions    atomic.Int64
	resets        atomic.Int64
	truncations   atomic.Int64
	delayedChunks atomic.Int64
	bytesUp       atomic.Int64
	bytesDown     atomic.Int64

	mu     sync.Mutex
	conns  []net.Conn
	closed bool
	wg     sync.WaitGroup

	partMu   sync.Mutex
	part     Direction     // directions currently blocked, all links
	partWake chan struct{} // closed+replaced on every partition change
	done     chan struct{} // closed on proxy Close; unblocks gated pumps
}

// New binds a proxy on an ephemeral localhost port, relaying every
// accepted connection to target under plan.
func New(target string, plan Plan) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		target:   target,
		plan:     plan,
		ln:       ln,
		partWake: make(chan struct{}),
		done:     make(chan struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// SetPartition blocks the given direction(s) on every link of this
// proxy, at the next chunk boundary. Bytes already read from a socket
// are held by the gated pump and delivered on heal; bytes not yet read
// stay in kernel buffers under TCP flow control — so a heal loses
// nothing, exactly like a routed IP partition. SetPartition(0) heals.
func (p *Proxy) SetPartition(d Direction) {
	p.partMu.Lock()
	p.part = d
	close(p.partWake) // wake gated pumps to re-check
	p.partWake = make(chan struct{})
	p.partMu.Unlock()
}

// Heal lifts any runtime partition; held and buffered bytes flow again.
func (p *Proxy) Heal() { p.SetPartition(0) }

// Partitioned reports the directions currently blocked.
func (p *Proxy) Partitioned() Direction {
	p.partMu.Lock()
	defer p.partMu.Unlock()
	return p.part
}

// gate blocks while dir is partitioned; it returns false when the
// proxy closed while waiting (the pump should exit, its held bytes
// are moot).
func (p *Proxy) gate(up bool) bool {
	dir := Down
	if up {
		dir = Up
	}
	for {
		p.partMu.Lock()
		blocked := p.part&dir != 0
		wake := p.partWake
		p.partMu.Unlock()
		if !blocked {
			return true
		}
		select {
		case <-wake:
		case <-p.done:
			return false
		}
	}
}

// Addr is the address clients dial instead of the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Stats snapshots the relay counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Accepted:      p.accepted.Load(),
		Partitions:    p.partitions.Load(),
		Resets:        p.resets.Load(),
		Truncations:   p.truncations.Load(),
		DelayedChunks: p.delayedChunks.Load(),
		BytesUp:       p.bytesUp.Load(),
		BytesDown:     p.bytesDown.Load(),
	}
}

// Close stops accepting, closes every relayed connection (partitioned
// ones included), and waits for the pumps to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := append([]net.Conn(nil), p.conns...)
	p.mu.Unlock()
	close(p.done) // unblock pumps gated behind a runtime partition
	err := p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
	return err
}

// track registers a connection for Close-time cleanup; it reports
// false when the proxy is already closed.
func (p *Proxy) track(conns ...net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns = append(p.conns, conns...)
	return true
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for i := 0; ; i++ {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		server, err := net.Dial("tcp", p.target)
		if err != nil {
			client.Close()
			continue
		}
		if !p.track(client, server) {
			client.Close()
			server.Close()
			return
		}
		p.accepted.Add(1)
		rule, _ := p.plan.rule(i) // zero Rule = Forward
		link := &link{proxy: p, rule: rule, client: client, server: server}
		p.wg.Add(2)
		go link.pump(client, server, true)
		go link.pump(server, client, false)
	}
}

// link is one relayed connection pair with its armed rule.
type link struct {
	proxy  *Proxy
	rule   Rule
	client net.Conn
	server net.Conn

	// faulted flips once when the rule fires; both pumps stop relaying.
	faulted atomic.Bool
	fireMu  sync.Mutex
}

// fire executes the rule's fault exactly once.
func (l *link) fire() {
	l.fireMu.Lock()
	defer l.fireMu.Unlock()
	if l.faulted.Load() {
		return
	}
	l.faulted.Store(true)
	switch l.rule.Act {
	case Partition:
		// Nothing is closed: both peers now face pure silence.
		l.proxy.partitions.Add(1)
	case Reset:
		if tcp, ok := l.client.(*net.TCPConn); ok {
			tcp.SetLinger(0)
		}
		l.client.Close()
		l.server.Close()
		l.proxy.resets.Add(1)
	case Truncate:
		l.client.Close()
		l.server.Close()
		l.proxy.truncations.Add(1)
	}
}

// pump relays src to dst until EOF, a fault, or proxy close. up marks
// the client-to-server direction, which is the one rule triggers are
// measured on.
func (l *link) pump(src, dst net.Conn, up bool) {
	defer l.proxy.wg.Done()
	// Either pump's natural end (EOF, write failure) tears the pair
	// down, so a vanished client propagates to the server and a
	// server-side close reaches the client as EOF, not silence — unless
	// a Partition fired, where lingering silently is the point.
	defer func() {
		if !l.faulted.Load() || l.rule.Act == Reset || l.rule.Act == Truncate {
			l.client.Close()
			l.server.Close()
		}
	}()
	counter := &l.proxy.bytesDown
	if up {
		counter = &l.proxy.bytesUp
	}
	relayed := int64(0)
	buf := make([]byte, 32*1024)
	for {
		if l.faulted.Load() {
			return
		}
		n, err := src.Read(buf)
		if n > 0 {
			// Runtime partition gate: hold the chunk (blocking, not
			// dropping) until the direction heals or the proxy closes.
			if !l.proxy.gate(up) {
				return
			}
			chunk := buf[:n]
			// The byte-offset trigger: relay the prefix before the
			// offset, then fire. Only upstream bytes arm triggers.
			if up && l.rule.Act != Forward && l.rule.Act != Delay && relayed+int64(n) >= l.rule.After {
				keep := l.rule.After - relayed
				if keep < 0 {
					keep = 0
				}
				if keep > 0 {
					dst.Write(chunk[:keep])
					counter.Add(keep)
				}
				l.fire()
				return
			}
			if l.rule.Act == Delay {
				l.proxy.delayedChunks.Add(1)
				time.Sleep(l.rule.Latency)
			}
			if l.faulted.Load() {
				return
			}
			if _, werr := dst.Write(chunk); werr != nil {
				return
			}
			relayed += int64(n)
			counter.Add(int64(n))
		}
		if err != nil {
			return
		}
	}
}
