package netfault_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"kexclusion/internal/netfault"
	"kexclusion/internal/server"
	"kexclusion/internal/server/client"
)

func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-served
	})
	return srv, addr.String()
}

func startProxy(t *testing.T, target string, plan netfault.Plan) *netfault.Proxy {
	t.Helper()
	px, err := netfault.New(target, plan)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { px.Close() })
	return px
}

func awaitServer(t *testing.T, srv *server.Server, what string, cond func(st int64) bool, get func() int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond(get()) {
		if time.Now().After(deadline) {
			t.Fatalf("%s never observed (last %d)", what, get())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCleanRelay(t *testing.T) {
	_, addr := startServer(t, server.Config{N: 2, K: 1, Shards: 1})
	px := startProxy(t, addr, netfault.Plan{Seed: 1})

	c, err := client.Dial(px.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := int64(1); i <= 5; i++ {
		if v, err := c.Add(0, 1); err != nil || v != i {
			t.Fatalf("Add through relay = %d, %v; want %d", v, err, i)
		}
	}
	st := px.Stats()
	if st.Accepted != 1 || st.BytesUp == 0 || st.BytesDown == 0 {
		t.Fatalf("relay stats %+v", st)
	}
	if st.Partitions+st.Resets+st.Truncations != 0 {
		t.Fatalf("clean plan fired faults: %+v", st)
	}
}

func TestPlanDeterminism(t *testing.T) {
	a := netfault.NewPlan(42, 8, netfault.Partition, netfault.Reset, netfault.Delay)
	b := netfault.NewPlan(42, 8, netfault.Partition, netfault.Reset, netfault.Delay)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different plans:\n%v\n%v", a, b)
	}
	conns := map[int]bool{}
	for _, r := range a.Rules {
		if conns[r.Conn] {
			t.Fatalf("two rules on conn %d", r.Conn)
		}
		conns[r.Conn] = true
		if r.After < 41 {
			t.Fatalf("rule fires at %dB, inside the handshake window", r.After)
		}
	}
	if s := a.String(); !strings.Contains(s, "seed=42") {
		t.Fatalf("plan string %q", s)
	}
	if s := (netfault.Plan{Seed: 7}).String(); !strings.Contains(s, "clean relay") {
		t.Fatalf("empty plan string %q", s)
	}
}

// TestPartitionWatchdogReclaim is the end-to-end acceptance test for
// the robustness stack: a client behind a silent partition loses its
// identity within the watchdog bound, a client on a healthy link keeps
// completing operations the whole time, and the reclaimed identity is
// leasable again.
func TestPartitionWatchdogReclaim(t *testing.T) {
	const idle = 150 * time.Millisecond
	srv, addr := startServer(t, server.Config{N: 2, K: 1, Shards: 1, IdleTimeout: idle})
	// Partition conn 0 the moment its first request has fully passed.
	px := startProxy(t, addr, netfault.Plan{Seed: 2, Rules: []netfault.Rule{
		{Conn: 0, Act: netfault.Partition, After: 41},
	}})

	victim, err := client.Dial(px.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	victim.SetOpTimeout(300 * time.Millisecond)

	healthy, err := client.Dial(addr) // direct link, no chaos
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()

	// The healthy client hammers ops from before the partition until
	// after the reclaim: it must stay oblivious the whole way through
	// (and staying busy is what keeps its own watchdog quiet).
	stop := make(chan struct{})
	type hres struct {
		ops int64
		err error
	}
	healthyDone := make(chan hres, 1)
	go func() {
		var ops int64
		for {
			select {
			case <-stop:
				healthyDone <- hres{ops, nil}
				return
			default:
			}
			if _, err := healthy.Add(0, 1); err != nil {
				healthyDone <- hres{ops, err}
				return
			}
			ops++
		}
	}()

	// The victim's first Add reaches the server (the partition fires
	// after the request's 41 bytes) but its response vanishes: the op
	// deadline must surface the silence instead of hanging.
	if _, err := victim.Add(0, 1); err == nil {
		t.Fatal("victim's op succeeded across a partition")
	}
	if err := victim.Ping(); !errors.Is(err, client.ErrBroken) {
		t.Fatalf("victim connection not poisoned: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().IdleReclaims < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("partitioned session never reclaimed: %+v", srv.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	res := <-healthyDone
	if res.err != nil {
		t.Fatalf("healthy client broken during neighbor's partition: %v", res.err)
	}
	if res.ops == 0 {
		t.Fatal("healthy client completed no ops during the reclaim window")
	}
	ops := res.ops

	// The identity is leasable again: N=2 with the healthy session
	// still admitted, so this dial needs the victim's freed identity.
	fresh, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("reclaimed identity not leasable: %v", err)
	}
	defer fresh.Close()
	if err := fresh.Ping(); err != nil {
		t.Fatal(err)
	}

	// The victim's first Add was applied server-side (exactly once)
	// before the partition ate the response: 1 + healthy's ops.
	if v, err := fresh.Get(0); err != nil || v != ops+1 {
		t.Fatalf("counter = %d, %v; want %d", v, err, ops+1)
	}
}

// TestResetHealsThroughReconnect: an injected RST mid-exchange is a
// transport failure; the reconnecting client re-admits and completes
// the idempotent read on a fresh link.
func TestResetHealsThroughReconnect(t *testing.T) {
	_, addr := startServer(t, server.Config{N: 2, K: 1, Shards: 1})
	px := startProxy(t, addr, netfault.Plan{Seed: 3, Rules: []netfault.Rule{
		{Conn: 0, Act: netfault.Reset, After: 41},
	}})

	r, err := client.DialReconnecting(px.Addr(), client.RetryPolicy{Seed: 7, BaseDelay: time.Millisecond}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Conn 0 dies by RST the moment the Get's request bytes pass; the
	// retry lands on conn 1, which has no rule.
	if _, err := r.Get(0); err != nil {
		t.Fatalf("Get did not heal through the reset: %v", err)
	}
	if got := r.Reconnects(); got != 2 {
		t.Fatalf("Reconnects = %d, want 2", got)
	}
	if st := px.Stats(); st.Resets != 1 || st.Accepted != 2 {
		t.Fatalf("proxy stats %+v", st)
	}
}

// TestTruncateMidFrame: cutting a request frame in half must surface
// server-side as a clean teardown with the identity reclaimed — the
// truncated frame can never be parsed as an operation.
func TestTruncateMidFrame(t *testing.T) {
	srv, addr := startServer(t, server.Config{N: 1, K: 1, Shards: 1})
	// 46 bytes: request 1 (41B) passes whole, request 2 is cut at 5 bytes.
	px := startProxy(t, addr, netfault.Plan{Seed: 4, Rules: []netfault.Rule{
		{Conn: 0, Act: netfault.Truncate, After: 46},
	}})

	c, err := client.Dial(px.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if v, err := c.Add(0, 7); err != nil || v != 7 {
		t.Fatalf("first op through truncating link: %d, %v", v, err)
	}
	if _, err := c.Add(0, 1); err == nil {
		t.Fatal("op succeeded across a truncated frame")
	}
	if st := px.Stats(); st.Truncations != 1 || st.BytesUp != 46 {
		t.Fatalf("proxy stats %+v", st)
	}

	// The server tore the session down and reclaimed the identity; the
	// half-request was never applied. N=1 proves re-leasability.
	awaitServer(t, srv, "truncate reclaim",
		func(v int64) bool { return v == 0 },
		func() int64 { return srv.Stats().ActiveSessions })
	fresh, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if v, err := fresh.Get(0); err != nil || v != 7 {
		t.Fatalf("counter = %d, %v; want 7 (half request must not apply)", v, err)
	}
}

// TestRuntimePartitionHealZeroLoss: a symmetric runtime partition
// blocks an in-flight op without failing it, and the heal delivers the
// held bytes — the op completes with nothing lost or doubled, exactly
// like TCP retransmission across a healed IP partition.
func TestRuntimePartitionHealZeroLoss(t *testing.T) {
	_, addr := startServer(t, server.Config{N: 2, K: 1, Shards: 1})
	px := startProxy(t, addr, netfault.Plan{Seed: 6})

	c, err := client.Dial(px.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetOpTimeout(10 * time.Second)
	if v, err := c.Add(0, 1); err != nil || v != 1 {
		t.Fatalf("pre-partition Add = %d, %v", v, err)
	}

	px.SetPartition(netfault.Both)
	if got := px.Partitioned(); got != netfault.Both {
		t.Fatalf("Partitioned() = %v, want Both", got)
	}
	type res struct {
		v   int64
		err error
	}
	done := make(chan res, 1)
	go func() {
		v, err := c.Add(0, 2)
		done <- res{v, err}
	}()
	select {
	case r := <-done:
		t.Fatalf("op completed across a partition: %d, %v", r.v, r.err)
	case <-time.After(150 * time.Millisecond):
	}

	px.Heal()
	select {
	case r := <-done:
		if r.err != nil || r.v != 3 {
			t.Fatalf("healed op = %d, %v; want 3 (held bytes delivered exactly once)", r.v, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("op never completed after the heal")
	}
	if got := px.Partitioned(); got != 0 {
		t.Fatalf("Partitioned() after heal = %v, want 0", got)
	}
}

// TestRuntimePartitionDirectional pins the asymmetric cases real IP
// networks produce. Down-only: the request crosses, the server
// applies, only the response is held — the client times out but the op
// happened. Up-only: the request itself is held — nothing applies
// until the heal delivers it.
func TestRuntimePartitionDirectional(t *testing.T) {
	_, addr := startServer(t, server.Config{N: 3, K: 1, Shards: 1})
	px := startProxy(t, addr, netfault.Plan{Seed: 7})

	observer, err := client.Dial(addr) // direct, unproxied
	if err != nil {
		t.Fatal(err)
	}
	defer observer.Close()

	// Down-only partition: the write lands, the ack is held.
	victim, err := client.Dial(px.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	victim.SetOpTimeout(200 * time.Millisecond)
	px.SetPartition(netfault.Down)
	if _, err := victim.Add(0, 5); err == nil {
		t.Fatal("op acked across a down-partitioned link")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := observer.Get(0)
		if err != nil {
			t.Fatal(err)
		}
		if v == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("counter = %d, want 5: down-only partition must not block the request direction", v)
		}
		time.Sleep(10 * time.Millisecond)
	}
	px.Heal()

	// Up-only partition: the request is held, so nothing applies while
	// the partition stands.
	victim2, err := client.Dial(px.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer victim2.Close()
	victim2.SetOpTimeout(200 * time.Millisecond)
	px.SetPartition(netfault.Up)
	if _, err := victim2.Add(0, 7); err == nil {
		t.Fatal("op acked across an up-partitioned link")
	}
	if v, err := observer.Get(0); err != nil || v != 5 {
		t.Fatalf("counter = %d, %v during up partition; want 5 (request held, not applied)", v, err)
	}
	// The heal delivers the held request: the write applies (exactly
	// once), even though its client long gave up — TCP semantics, not
	// message-drop semantics.
	px.Heal()
	deadline = time.Now().Add(5 * time.Second)
	for {
		v, err := observer.Get(0)
		if err != nil {
			t.Fatal(err)
		}
		if v == 12 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("counter = %d, want 12: healed up-partition must deliver the held request", v)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDelaySlowsButCompletes: a slow link is degradation, not failure —
// every operation still completes, and the proxy accounts the latency.
func TestDelaySlowsButCompletes(t *testing.T) {
	_, addr := startServer(t, server.Config{N: 1, K: 1, Shards: 1})
	px := startProxy(t, addr, netfault.Plan{Seed: 5, Rules: []netfault.Rule{
		{Conn: 0, Act: netfault.Delay, Latency: 3 * time.Millisecond},
	}})

	c, err := client.Dial(px.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := int64(1); i <= 5; i++ {
		if v, err := c.Add(0, 1); err != nil || v != i {
			t.Fatalf("Add over slow link = %d, %v; want %d", v, err, i)
		}
	}
	if st := px.Stats(); st.DelayedChunks == 0 {
		t.Fatalf("no chunks delayed: %+v", st)
	}
}
