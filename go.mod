module kexclusion

go 1.22
