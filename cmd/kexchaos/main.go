// Command kexchaos runs seeded crash-fault injection against the
// native k-exclusion implementations (and the renaming / shared-object
// wrappers built on them) and reports whether the paper's resilience
// contract held: fewer than k slot-costing crashes must leave every
// surviving goroutine completing its workload, while k or more must be
// detected as loss of progress rather than a hang. The injection plan
// is a pure function of -seed, so runs are scriptable and reproducible
// like kexsim scenarios; the exit status encodes the verdict check.
//
// Example:
//
//	kexchaos -impl fastpath -n 16 -k 4 -crashes 3 -seed 7
//	kexchaos -impl localspin -crashes 4 -kinds holding -deadline 2s   # k crashes: expect reported loss
//	kexchaos -impl fastpath -assignment -kinds renaming,holding
//	kexchaos -all -seed 42 -json
//	kexchaos -net -n 6 -k 2 -ops 10 -seed 7       # link faults through a chaos proxy
//	kexchaos -restart -served-bin ./kexserved -n 4 -k 2 -ops 25 -seed 7   # SIGKILL + recovery
//	kexchaos -cluster -served-bin ./kexserved -n 4 -k 2 -ops 25 -seed 7   # SIGKILL the primary, fail over, rejoin
//	kexchaos -cluster -partition -served-bin ./kexserved -ops 25 -seed 7  # isolate the primary, lease must fence it
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"kexclusion/internal/core"
	"kexclusion/internal/faultinject"
	"kexclusion/internal/obs"
	"kexclusion/internal/renaming"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kexchaos:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kexchaos", flag.ContinueOnError)
	var (
		implName    = fs.String("impl", "fastpath", "implementation name (see -list)")
		list        = fs.Bool("list", false, "list implementations and exit")
		all         = fs.Bool("all", false, "run every resilient implementation")
		n           = fs.Int("n", 16, "number of process identities")
		k           = fs.Int("k", 4, "slots (resiliency level)")
		ops         = fs.Int("ops", 32, "operations each survivor must complete")
		crashes     = fs.Int("crashes", 0, "number of crashes to inject (k-1 probes the contract, k the boundary)")
		kindsCSV    = fs.String("kinds", "entry,holding,exit", "crash points to draw from (entry, holding, exit, renaming)")
		seed        = fs.Int64("seed", 1, "plan seed (same seed, same plan, same report)")
		deadline    = fs.Duration("deadline", 30*time.Second, "watchdog before a run is reported as loss of progress")
		assignment  = fs.Bool("assignment", false, "wrap the implementation in Figure 7 k-assignment")
		shared      = fs.Bool("shared", false, "drive the full §1 shared-object stack (counter under k-assignment)")
		asJSON      = fs.Bool("json", false, "emit JSON: the deterministic report plus the metrics snapshot")
		netMode     = fs.Bool("net", false, "inject link faults through a chaos proxy at a live server instead of in-process crashes")
		netKinds    = fs.String("net-kinds", "delay,partition,reset,truncate", "-net mode: link faults to draw from (delay, partition, reset, truncate)")
		idle        = fs.Duration("idle-timeout", 250*time.Millisecond, "-net mode: the server's session watchdog bound")
		restart     = fs.Bool("restart", false, "SIGKILL a live kexserved subprocess mid-load and restart it from its data directory, asserting no acknowledged write is lost or doubled")
		clusterMode = fs.Bool("cluster", false, "boot a 3-member replicated kexserved cluster, SIGKILL the shard 0 primary mid-load, assert every acknowledged write survives the failover exactly once, then restart the victim and assert it re-converges")
		partition   = fs.Bool("partition", false, "-cluster mode: isolate the shard 0 primary behind heal-able network partitions instead of SIGKILL, asserting its leader lease closes the split-brain serving window before healing and checking convergence")
		failAfter   = fs.Duration("fail-after", time.Second, "-cluster mode: the spawned cluster's failure detector bound (how long the survivors take to suspect the killed primary)")
		leaseFlag   = fs.Duration("lease", 0, "-cluster mode: the spawned members' leader lease (0 = fail-after/2; must be < fail-after)")
		servedBin   = fs.String("served-bin", "", "-restart/-cluster mode: path to the kexserved binary to spawn")
		dataDir     = fs.String("data-dir", "", "-restart/-cluster mode: durability directory (empty = fresh temp dir, removed on exit)")
		fsyncMode   = fs.String("fsync", "always", "-restart/-cluster mode: WAL sync policy for the spawned servers (always or interval; never would forfeit the contract)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, c := range core.Registry() {
			fmt.Fprintf(out, "%-11s %s\n", c.Name, c.Doc)
		}
		return nil
	}
	kinds, err := faultinject.ParseKinds(*kindsCSV)
	if err != nil {
		return err
	}
	if *assignment && *shared {
		return fmt.Errorf("-assignment and -shared are exclusive")
	}
	// Validate the flag shape here so a bad invocation gets a usage
	// error, not a panic from deep inside construction.
	if *k < 1 {
		return fmt.Errorf("need k >= 1, got k=%d", *k)
	}
	if *n < *k {
		return fmt.Errorf("need n >= k, got n=%d k=%d", *n, *k)
	}
	if *clusterMode {
		if *all || *assignment || *shared || *crashes != 0 || *netMode || *restart {
			return fmt.Errorf("-cluster kills a real cluster primary and fails over; it excludes -all, -assignment, -shared, -crashes, -net, and -restart")
		}
		if *servedBin == "" {
			return fmt.Errorf("-cluster needs -served-bin (path to a kexserved binary)")
		}
		if *fsyncMode != "always" && *fsyncMode != "interval" {
			return fmt.Errorf("-cluster needs -fsync always or interval: under %q an acknowledged write may legally die with the process", *fsyncMode)
		}
		if *ops < 2 {
			return fmt.Errorf("need ops >= 2, got ops=%d: the kill must land mid-load", *ops)
		}
		if *failAfter <= 0 {
			return fmt.Errorf("need fail-after > 0, got %v", *failAfter)
		}
		if *leaseFlag < 0 || *leaseFlag >= *failAfter {
			return fmt.Errorf("need 0 <= lease < fail-after (%v), got %v", *failAfter, *leaseFlag)
		}
		ccfg := clusterConfig{
			impl: *implName, n: *n, k: *k, ops: *ops, seed: *seed,
			deadline: *deadline, asJSON: *asJSON,
			servedBin: *servedBin, dataDir: *dataDir, fsync: *fsyncMode,
			failAfter: *failAfter, lease: *leaseFlag,
		}
		if *partition {
			return runPartition(out, ccfg)
		}
		return runCluster(out, ccfg)
	}
	if *partition {
		return fmt.Errorf("-partition needs -cluster")
	}
	if *restart {
		if *all || *assignment || *shared || *crashes != 0 || *netMode {
			return fmt.Errorf("-restart kills and recovers a real kexserved process; it excludes -all, -assignment, -shared, -crashes, and -net")
		}
		if *servedBin == "" {
			return fmt.Errorf("-restart needs -served-bin (path to a kexserved binary)")
		}
		if *fsyncMode != "always" && *fsyncMode != "interval" {
			return fmt.Errorf("-restart needs -fsync always or interval: under %q an acknowledged write may legally die with the process", *fsyncMode)
		}
		if *ops < 2 {
			return fmt.Errorf("need ops >= 2, got ops=%d: the kill must land mid-load", *ops)
		}
		return runRestart(out, restartConfig{
			impl: *implName, n: *n, k: *k, ops: *ops, seed: *seed,
			deadline: *deadline, asJSON: *asJSON,
			servedBin: *servedBin, dataDir: *dataDir, fsync: *fsyncMode,
			restarts: 1,
		})
	}
	if *netMode {
		if *all || *assignment || *shared || *crashes != 0 {
			return fmt.Errorf("-net injects link faults at a single implementation's network edge; it excludes -all, -assignment, -shared, and -crashes")
		}
		if *ops < 1 {
			return fmt.Errorf("need ops >= 1, got ops=%d", *ops)
		}
		if *idle <= 0 {
			return fmt.Errorf("need idle-timeout > 0, got %v: the watchdog is what reclaims a partitioned client's identity", *idle)
		}
		return runNet(out, netConfig{
			impl: *implName, n: *n, k: *k, ops: *ops,
			kindsCSV: *netKinds, seed: *seed,
			idle: *idle, deadline: *deadline, asJSON: *asJSON,
		})
	}

	var impls []core.Constructor
	if *all {
		for _, c := range core.Registry() {
			if c.Resilient && c.FixedK == 0 {
				impls = append(impls, c)
			}
		}
	} else {
		c, err := core.ByName(*implName)
		if err != nil {
			return err
		}
		impls = []core.Constructor{c}
	}

	failures := 0
	for _, c := range impls {
		kk := *k
		if c.FixedK != 0 {
			kk = c.FixedK
		}
		plan := faultinject.NewPlan(*seed, *n, *ops, *crashes, kinds...)
		sink := obs.New()
		cfg := faultinject.Config{Name: label(c.Name, *assignment, *shared), OpsPerProc: *ops, Deadline: *deadline, Metrics: sink}

		var res faultinject.Result
		kx := c.New(*n, kk, core.WithMetrics(sink))
		switch {
		case *shared:
			res, err = faultinject.RunShared(kx, plan, cfg)
		case *assignment:
			res, err = faultinject.RunAssignment(renaming.NewAssignment(kx).WithMetrics(sink), plan, cfg)
		default:
			res, err = faultinject.Run(kx, plan, cfg)
		}
		if err != nil {
			return err
		}

		if *asJSON {
			// The "report" object keeps the documented determinism
			// guarantee (pure function of the seed); "obs" is the
			// schedule-dependent metrics snapshot riding alongside.
			b, err := json.MarshalIndent(struct {
				Report faultinject.Report `json:"report"`
				Obs    obs.Snapshot       `json:"obs"`
			}{res.Report, res.Obs}, "", "  ")
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%s\n", b)
		} else {
			fmt.Fprint(out, res.Report)
			fmt.Fprintf(out, "observed: ops=%d crashes fired=%d entry landed=%d max survivor acquire=%v elapsed=%v\n",
				res.Metrics.CompletedOps, res.Metrics.CrashesFired, res.Metrics.EntryLanded,
				res.Metrics.MaxAcquire, res.Metrics.Elapsed.Round(time.Millisecond))
			fmt.Fprintf(out, "metrics: %s\n", res.Obs)
			if res.Metrics.NameViolations != 0 {
				fmt.Fprintf(out, "NAME VIOLATIONS: %d\n", res.Metrics.NameViolations)
			}
		}

		// Verdict check: resilient implementations must complete below
		// the k-crash boundary and report loss at or beyond it; the
		// non-resilient comparator must fail any slot-costing crash.
		expectLoss := plan.SlotsCharged() >= kk
		if !c.Resilient && plan.SlotsCharged() > 0 {
			expectLoss = true
		}
		if res.Report.ProgressLost != expectLoss {
			failures++
			fmt.Fprintf(out, "CONTRACT VIOLATION: %s charged %d of %d slots but progress_lost=%v\n",
				c.Name, plan.SlotsCharged(), kk, res.Report.ProgressLost)
		}
		if res.Metrics.NameViolations != 0 {
			failures++
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d contract violation(s)", failures)
	}
	return nil
}

func label(impl string, assignment, shared bool) string {
	switch {
	case shared:
		return impl + "+shared"
	case assignment:
		return impl + "+renaming"
	}
	return impl
}
