package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"kexclusion/internal/netfault"
	"kexclusion/internal/server/client"
	"kexclusion/internal/wire"
)

// runPartition drives the leader-lease contract end to end against a
// real network partition, not a kill: a three-node cluster boots with
// every inter-member replication link routed through its own netfault
// proxy (one proxy per directed pair, so the harness can cut exactly
// the victim's links and nobody else's), n reconnecting clients write
// shard 0 through its primary, and at half-load every replication link
// touching the primary is partitioned in both directions — the member
// stays alive, its clients stay connected, only its quorum witness
// goes dark.
//
// The contract checked, in order:
//
//  1. Split-brain window: a probe client hammering the isolated
//     primary must see it STOP admitting (not_primary refusals)
//     within 2x the lease interval — asserted against the wall clock,
//     not eyeballed. The probe writes are Add(0, 0): harmless even if
//     one lands on the doomed fork before the lease lapses.
//  2. The majority keeps serving: the load completes against the
//     promoted heir while the victim is still isolated.
//  3. Heal: the partitions lift (held bytes flow again — nothing was
//     dropped), the victim catches up, its fork is fenced beneath the
//     heir's epoch, ownership re-converges, and the counter is EXACTLY
//     n x ops — zero acks lost or doubled across partition and heal.
//  4. The victim's own counters prove the mechanism: nonzero
//     lease_demotions (it self-demoted, it wasn't told), and after a
//     settle write on every shard all three frontiers are identical —
//     zero post-heal divergence.
func runPartition(out io.Writer, cfg clusterConfig) error {
	lease := cfg.effLease()
	dir := cfg.dataDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "kexchaos-partition-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	realAddrs := make([]string, clusterNodes)
	replAddrs := make([]string, clusterNodes)
	proxies := make([]*netfault.Proxy, clusterNodes)
	var err error
	for i := range realAddrs {
		if realAddrs[i], err = reserveAddr(); err != nil {
			return err
		}
		if replAddrs[i], err = reserveAddr(); err != nil {
			return err
		}
	}
	// One replication proxy per directed pair: repl[i][j] is the path
	// member i uses to pull from member j. Isolating member v means
	// partitioning repl[v][*] (v's pulls of others) and repl[*][v]
	// (others' pulls of v) — the full quorum-witness surface, while
	// client links stay up.
	repl := make([][]*netfault.Proxy, clusterNodes)
	defer func() {
		for _, px := range proxies {
			if px != nil {
				px.Close()
			}
		}
		for _, row := range repl {
			for _, px := range row {
				if px != nil {
					px.Close()
				}
			}
		}
	}()
	for i := range proxies {
		if proxies[i], err = netfault.New(realAddrs[i], netfault.Plan{Seed: cfg.seed + int64(i)}); err != nil {
			return err
		}
	}
	for i := range repl {
		repl[i] = make([]*netfault.Proxy, clusterNodes)
		for j := range repl[i] {
			if i == j {
				continue
			}
			if repl[i][j], err = netfault.New(replAddrs[j], netfault.Plan{Seed: cfg.seed + int64(10+i*clusterNodes+j)}); err != nil {
				return err
			}
		}
	}

	// Each member gets its own -peers spec: its own entry binds the
	// real repl address, every other entry routes through this member's
	// directed proxy for that peer. Peer IDs (which build the ring) are
	// identical everywhere; only the dial paths differ.
	members := make([]*served, clusterNodes)
	defer func() {
		for _, s := range members {
			if s != nil {
				s.kill()
			}
		}
	}()
	for i := range members {
		entries := make([]string, clusterNodes)
		for j := range entries {
			ra := replAddrs[j]
			if i != j {
				ra = repl[i][j].Addr()
			}
			entries[j] = fmt.Sprintf("node-%d=%s/%s", j, proxies[j].Addr(), ra)
		}
		s, err := startServedArgs(cfg.servedBin,
			// Two spare identities past the load clients: the probe that
			// hammers the isolated primary, and the settle/verdict client.
			"-addr", realAddrs[i], "-n", fmt.Sprint(cfg.n+2), "-k", fmt.Sprint(cfg.k),
			"-shards", fmt.Sprint(clusterShards), "-impl", cfg.impl, "-quiet",
			"-data-dir", filepath.Join(dir, fmt.Sprintf("node-%d", i)),
			"-fsync", cfg.fsync,
			"-node-id", fmt.Sprintf("node-%d", i), "-peers", strings.Join(entries, ","),
			"-quorum", "majority", "-fail-after", cfg.failAfter.String(),
			"-lease", lease.String())
		if err != nil {
			return fmt.Errorf("member %d: %w", i, err)
		}
		members[i] = s
	}

	primary := -1
	probeDeadline := time.Now().Add(15 * time.Second)
	var probeErr error
	for primary < 0 {
		if time.Now().After(probeDeadline) {
			return fmt.Errorf("cluster never converged on a shard 0 owner: %v", probeErr)
		}
		if primary, probeErr = probeOwner(proxies); probeErr != nil {
			primary = -1
			time.Sleep(50 * time.Millisecond)
		}
	}

	var followers []int
	for i := range members {
		if i != primary {
			followers = append(followers, i)
		}
	}
	conns := make([]*client.Reconnecting, cfg.n)
	for i := range conns {
		home := proxies[followers[i%len(followers)]].Addr()
		c, err := client.DialReconnecting(home, client.RetryPolicy{
			Seed:        cfg.seed + int64(i) + 1,
			Session:     uint64(cfg.seed+int64(i))<<1 | 1,
			MaxAttempts: 30,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    500 * time.Millisecond,
		}, 2*time.Second)
		if err != nil {
			return fmt.Errorf("client %d admission: %w", i, err)
		}
		defer c.Close()
		conns[i] = c
	}

	var acked atomic.Int64
	killAt := int64(cfg.n*cfg.ops) / 2
	errs := make([]error, cfg.n)
	var wg sync.WaitGroup
	for i, c := range conns {
		wg.Add(1)
		go func(i int, c *client.Reconnecting) {
			defer wg.Done()
			for op := 0; op < cfg.ops; op++ {
				if _, err := c.AddOp(0, 1); err != nil {
					errs[i] = fmt.Errorf("op %d: %w", op, err)
					return
				}
				acked.Add(1)
			}
		}(i, c)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	// The coordinator: at half-load, cut every replication link
	// touching the primary (both directions — symmetric isolation),
	// then probe the isolated member until it refuses.
	type probeVerdict struct {
		err          error
		refusalAfter time.Duration
	}
	probed := make(chan probeVerdict, 1)
	go func() {
		for acked.Load() < killAt {
			select {
			case <-done:
				probed <- probeVerdict{err: fmt.Errorf("workers stopped at %d/%d acked writes before the partition threshold", acked.Load(), killAt)}
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
		for j := range members {
			if j == primary {
				continue
			}
			repl[primary][j].SetPartition(netfault.Both)
			repl[j][primary].SetPartition(netfault.Both)
		}
		partitionedAt := time.Now()
		probed <- probeVerdict{err: probeIsolated(proxies[primary].Addr(), cfg.seed, partitionedAt, lease),
			refusalAfter: time.Since(partitionedAt)}
	}()

	select {
	case <-done:
	case <-time.After(cfg.deadline):
		return fmt.Errorf("loss of progress: clients still running after the %v deadline", cfg.deadline)
	}
	verdict := <-probed

	failures := 0
	if verdict.err != nil {
		failures++
		fmt.Fprintf(out, "CONTRACT VIOLATION: %v\n", verdict.err)
	}

	// Heal. The held bytes deliver, the victim's pulls resume, it
	// catches up past the heir's epoch and re-claims its ring shards
	// through the gated promotion path.
	for j := range members {
		if j == primary {
			continue
		}
		repl[primary][j].Heal()
		repl[j][primary].Heal()
	}
	reconvergeDeadline := time.Now().Add(20 * time.Second)
	converged := -1
	var convErr error
	for converged < 0 && !time.Now().After(reconvergeDeadline) {
		if converged, convErr = probeOwner(proxies); convErr != nil {
			converged = -1
			time.Sleep(50 * time.Millisecond)
		}
	}
	if converged < 0 {
		failures++
		fmt.Fprintf(out, "CONTRACT VIOLATION: cluster never re-converged after the heal: %v\n", convErr)
	}

	completed := 0
	for i, e := range errs {
		if e == nil {
			completed++
		} else {
			failures++
			fmt.Fprintf(out, "client %d failed: %v\n", i, e)
		}
	}

	// Settle writes: BumpEpochs fences locally via snapshot, so a
	// follower adopts a promotion's epoch only when the first record AT
	// that epoch replicates. One delta-0 write per shard (counters
	// untouched) pushes every shard's current epoch through replication
	// so the frontier-equality check below can demand exact agreement.
	settle, err := client.DialReconnecting(proxies[0].Addr(), client.RetryPolicy{
		Seed: cfg.seed + 1000, Session: uint64(cfg.seed)<<1 | (1 << 20) | 1,
		MaxAttempts: 30, BaseDelay: 10 * time.Millisecond, MaxDelay: 500 * time.Millisecond,
	}, 2*time.Second)
	if err != nil {
		return fmt.Errorf("settle client admission: %w", err)
	}
	defer settle.Close()
	for s := uint32(0); s < clusterShards; s++ {
		if _, err := settle.Add(s, 0); err != nil {
			return fmt.Errorf("settle write on shard %d: %w", s, err)
		}
	}
	counter, err := settle.Get(0)
	if err != nil {
		return fmt.Errorf("verdict read: %w", err)
	}
	want := int64(cfg.n * cfg.ops)
	if counter != want {
		failures++
		fmt.Fprintf(out, "CONTRACT VIOLATION: counter=%d, want exactly %d (lost or doubled acknowledged writes across partition and heal)\n",
			counter, want)
	}

	var dupeAcks, redirects int64
	for _, c := range conns {
		dupeAcks += c.DupeAcks()
		redirects += c.Redirects()
		c.Close()
	}
	if redirects == 0 {
		failures++
		fmt.Fprintf(out, "CONTRACT VIOLATION: redirects=0: follower-homed clients never saw a not_primary redirect\n")
	}

	memberStats := make(map[string]wire.Stats, clusterNodes)
	for i := range members {
		c, err := client.DialTimeout(realAddrs[i], 2*time.Second)
		if err != nil {
			return fmt.Errorf("verdict stats from member %d: %w", i, err)
		}
		st, serr := c.Stats()
		c.Close()
		if serr != nil {
			return fmt.Errorf("verdict stats from member %d: %w", i, serr)
		}
		memberStats[fmt.Sprintf("node-%d", i)] = st
	}
	victim := memberStats[fmt.Sprintf("node-%d", primary)]
	if victim.LeaseDemotions == 0 {
		failures++
		fmt.Fprintf(out, "CONTRACT VIOLATION: lease_demotions=0 on the isolated member: it never self-demoted\n")
	}
	if victim.LeaseExpirations == 0 {
		failures++
		fmt.Fprintf(out, "CONTRACT VIOLATION: lease_expirations=0 on the isolated member: its lease never lapsed\n")
	}

	// Zero post-heal divergence: every member's (version, epoch)
	// frontier must be byte-identical, polled briefly because the last
	// settle record is still in flight to the slowest follower.
	frontierDeadline := time.Now().Add(10 * time.Second)
	var frontierErr error
	for {
		frontierErr = frontiersEqual(replAddrs)
		if frontierErr == nil || time.Now().After(frontierDeadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if frontierErr != nil {
		failures++
		fmt.Fprintf(out, "CONTRACT VIOLATION: post-heal divergence: %v\n", frontierErr)
	}

	for i := range members {
		members[i].cmd.Process.Signal(syscall.SIGTERM)
	}
	for i := range members {
		select {
		case <-members[i].exited:
		case <-time.After(10 * time.Second):
			members[i].kill()
		}
	}

	if cfg.asJSON {
		b, err := json.MarshalIndent(struct {
			Completed      int                   `json:"completed_clients"`
			Clients        int                   `json:"clients"`
			Counter        int64                 `json:"counter"`
			Want           int64                 `json:"want_counter"`
			DupeAcks       int64                 `json:"dupe_acks"`
			Redirects      int64                 `json:"redirects"`
			RefusalAfterMS int64                 `json:"refusal_after_ms"`
			LeaseMS        int64                 `json:"lease_ms"`
			Failures       int                   `json:"violations"`
			Members        map[string]wire.Stats `json:"members"`
		}{completed, cfg.n, counter, want, dupeAcks, redirects,
			verdict.refusalAfter.Milliseconds(), lease.Milliseconds(), failures, memberStats}, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s\n", b)
	} else {
		fmt.Fprintf(out, "partition chaos: impl=%s n=%d k=%d ops=%d fsync=%s seed=%d members=%d quorum=majority lease=%v\n",
			cfg.impl, cfg.n, cfg.k, cfg.ops, cfg.fsync, cfg.seed, clusterNodes, lease)
		fmt.Fprintf(out, "clients: %d/%d completed; counter=%d (want %d) dupe_acks=%d redirects=%d refusal_after=%v\n",
			completed, cfg.n, counter, want, dupeAcks, redirects, verdict.refusalAfter.Round(time.Millisecond))
		for i := range members {
			st := memberStats[fmt.Sprintf("node-%d", i)]
			fmt.Fprintf(out, "member node-%d: lease_held=%v lease_expirations=%d lease_demotions=%d quorum_acks=%d notprimary_redirects=%d\n",
				i, st.LeaseHeld, st.LeaseExpirations, st.LeaseDemotions, st.QuorumAcks, st.NotPrimaryRedirects)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d contract violation(s)", failures)
	}
	if !cfg.asJSON {
		fmt.Fprintf(out, "verdict: partitioned (node-%d stopped admitting %v after isolation, bound 2x lease %v; %d acknowledged writes survived exactly once; frontiers re-converged)\n",
			primary, verdict.refusalAfter.Round(time.Millisecond), 2*lease, want)
	}
	return nil
}

// probeIsolated hammers the isolated primary with delta-0 writes until
// it answers not_primary, asserting the first refusal lands within 2x
// the lease interval of the partition. Internal answers (a quorum wait
// the lease failed fast) mean the member is still admitting; transport
// failures redial — the member is alive, only its peers are dark.
func probeIsolated(addr string, seed int64, partitionedAt time.Time, lease time.Duration) error {
	bound := 2 * lease
	deadline := partitionedAt.Add(bound + 3*time.Second)
	session := uint64(seed)<<1 | (1 << 21) | 1
	var pc *client.Client
	defer func() {
		if pc != nil {
			pc.Close()
		}
	}()
	seq := uint64(0)
	for time.Now().Before(deadline) {
		if pc == nil {
			c, err := client.DialTimeout(addr, time.Second)
			if err != nil {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			c.SetOpTimeout(2*lease + time.Second)
			c.SetSession(session)
			pc = c
		}
		seq++
		_, err := pc.AddOp(0, 0, seq)
		if err == nil {
			continue // still admitting: the lease has not lapsed yet
		}
		if isNotPrimaryErr(err) != nil {
			if since := time.Since(partitionedAt); since > bound {
				return fmt.Errorf("isolated primary kept admitting for %v, bound 2x lease = %v", since, bound)
			}
			return nil
		}
		var we *wire.Error
		if !errors.As(err, &we) {
			pc.Close()
			pc = nil // transport hiccup: redial and keep probing
		}
	}
	return fmt.Errorf("isolated primary never answered not_primary within %v (still split-brain serving)", bound+3*time.Second)
}

// frontiersEqual dials every member's replication listener directly
// (the probe's hello ID is outside the membership, so it cannot count
// as a lease witness) and compares their per-shard (version, epoch)
// frontiers for exact equality.
func frontiersEqual(replAddrs []string) error {
	var refV, refE []uint64
	for i, addr := range replAddrs {
		v, e, err := fetchFrontier(addr)
		if err != nil {
			return fmt.Errorf("member %d frontier: %w", i, err)
		}
		if i == 0 {
			refV, refE = v, e
			continue
		}
		for s := range refV {
			if v[s] != refV[s] || e[s] != refE[s] {
				return fmt.Errorf("member %d shard %d at (ver %d, epoch %d), member 0 at (ver %d, epoch %d)",
					i, s, v[s], e[s], refV[s], refE[s])
			}
		}
	}
	return nil
}

// fetchFrontier speaks just enough of the repl dialect to read one
// member's frontier.
func fetchFrontier(addr string) (vers, epochs []uint64, err error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if err := wire.WriteReplFrame(conn, wire.ReplHello{NodeID: "kexchaos-probe"}.Encode()); err != nil {
		return nil, nil, err
	}
	b, err := wire.ReadReplFrame(conn)
	if err != nil {
		return nil, nil, err
	}
	w, err := wire.ParseReplWelcome(b)
	if err != nil {
		return nil, nil, err
	}
	if w.Status != wire.StatusOK {
		return nil, nil, fmt.Errorf("replication handshake refused: %s", w.Status)
	}
	if err := wire.WriteReplFrame(conn, wire.EncodeFrontierRequest()); err != nil {
		return nil, nil, err
	}
	b, err = wire.ReadReplFrame(conn)
	if err != nil {
		return nil, nil, err
	}
	f, err := wire.ParseFrontierResponse(b)
	if err != nil {
		return nil, nil, err
	}
	if f.Status != wire.StatusOK {
		return nil, nil, fmt.Errorf("frontier refused: %s", f.Status)
	}
	return f.Vers, f.Epochs, nil
}
