package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestChaosResilientRun(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-impl", "fastpath", "-n", "8", "-k", "3", "-ops", "8", "-crashes", "2", "-kinds", "holding", "-seed", "7"}, &b)
	if err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "verdict: resilient") {
		t.Fatalf("expected resilient verdict:\n%s", b.String())
	}
}

func TestChaosLossBoundary(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-impl", "counting", "-n", "6", "-k", "2", "-ops", "4", "-crashes", "2", "-kinds", "holding", "-deadline", "1s"}, &b)
	if err != nil {
		t.Fatalf("k crashes must be a *reported* loss, not a violation: %v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "LOSS OF PROGRESS") {
		t.Fatalf("expected loss verdict:\n%s", b.String())
	}
}

func TestChaosJSONDeterminism(t *testing.T) {
	args := []string{"-impl", "localspin", "-n", "8", "-k", "3", "-ops", "6", "-crashes", "2", "-seed", "11", "-json"}
	var a, b strings.Builder
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	// The "report" object is the documented determinism guarantee — a
	// pure function of the seed. The "obs" snapshot riding alongside is
	// schedule-dependent (spin polls, latency buckets), so compare only
	// the report sub-objects byte for byte.
	report := func(s string) json.RawMessage {
		var top struct {
			Report json.RawMessage `json:"report"`
			Obs    json.RawMessage `json:"obs"`
		}
		if err := json.Unmarshal([]byte(s), &top); err != nil {
			t.Fatalf("bad JSON output: %v\n%s", err, s)
		}
		if len(top.Obs) == 0 {
			t.Fatalf("JSON output missing obs snapshot:\n%s", s)
		}
		return top.Report
	}
	ra, rb := report(a.String()), report(b.String())
	if string(ra) != string(rb) {
		t.Fatalf("same seed produced different reports:\n%s\n%s", ra, rb)
	}
	if !strings.Contains(a.String(), "\"seed\": 11") {
		t.Fatalf("JSON report missing seed:\n%s", a.String())
	}
	if !strings.Contains(a.String(), "\"spin_polls\"") {
		t.Fatalf("obs snapshot missing metrics fields:\n%s", a.String())
	}
}

func TestChaosAssignment(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-impl", "fastpath", "-assignment", "-n", "8", "-k", "3", "-ops", "6", "-crashes", "2", "-kinds", "renaming,exit", "-seed", "3"}, &b)
	if err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "fastpath+renaming") {
		t.Fatalf("expected wrapper label:\n%s", b.String())
	}
}

func TestChaosShared(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-impl", "lsfastpath", "-shared", "-n", "8", "-k", "3", "-ops", "6", "-crashes", "2", "-seed", "5"}, &b)
	if err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "applied total=") {
		t.Fatalf("expected applied-operation accounting:\n%s", b.String())
	}
}

func TestChaosList(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"inductive", "tree", "fastpath", "graceful", "localspin", "lsfastpath", "mcs"} {
		if !strings.Contains(b.String(), name) {
			t.Fatalf("listing missing %q:\n%s", name, b.String())
		}
	}
}

func TestChaosErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-impl", "no-such"}, &b); err == nil {
		t.Fatal("expected error for unknown implementation")
	}
	if err := run([]string{"-kinds", "reboot"}, &b); err == nil {
		t.Fatal("expected error for unknown crash kind")
	}
	if err := run([]string{"-assignment", "-shared"}, &b); err == nil {
		t.Fatal("expected error for exclusive wrapper flags")
	}
}

// TestChaosMCSWedge: the concluding-remarks comparator collapses at a
// single crash; kexchaos must report the loss without flagging a
// contract violation (MCS promises nothing).
func TestChaosMCSWedge(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-impl", "mcs", "-n", "4", "-ops", "4", "-crashes", "1", "-kinds", "holding", "-deadline", "1s"}, &b)
	if err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "LOSS OF PROGRESS") {
		t.Fatalf("expected MCS wedge to be reported:\n%s", b.String())
	}
}

// TestChaosFlagShapeValidation: nonsense (n, k) shapes exit with a clear
// error instead of panicking deep inside construction.
func TestChaosFlagShapeValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-k", "0"}, "need k >= 1"},
		{[]string{"-n", "2", "-k", "4"}, "need n >= k"},
	} {
		var b strings.Builder
		err := run(tc.args, &b)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v): got %v, want error containing %q", tc.args, err, tc.want)
		}
	}
}
