package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"kexclusion/internal/netfault"
	"kexclusion/internal/server/client"
	"kexclusion/internal/wire"
)

// clusterConfig is the -cluster mode's shape, pre-validated by run.
type clusterConfig struct {
	impl      string
	n, k      int
	ops       int
	seed      int64
	deadline  time.Duration
	asJSON    bool
	servedBin string
	dataDir   string
	fsync     string
	failAfter time.Duration
	lease     time.Duration // 0 = the spawned servers' default (fail-after/2)
}

// effLease is the lease interval the spawned members actually run
// with: the -lease flag, or the kexserved default of fail-after/2.
func (c clusterConfig) effLease() time.Duration {
	if c.lease > 0 {
		return c.lease
	}
	return c.failAfter / 2
}

// clusterNodes is the membership size: three is the smallest cluster
// where a majority quorum (2) survives one crash.
const clusterNodes = 3

// clusterShards spreads placement across the ring; the exactly-once
// contract is checked on shard 0's counter.
const clusterShards = 4

// reserveAddr grabs an ephemeral localhost port and releases it for the
// spawned server to rebind: every member's address must appear in every
// member's -peers before any member exists.
func reserveAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// probeOwner asks all three members who owns shard 0, through their
// proxies, and returns the owner's index only when the view has
// converged: exactly one member serves the shard and both others
// redirect to that member's advertised address. A transient boot-time
// view (a member briefly self-promoted over peers it has not met yet)
// fails the round and is retried.
func probeOwner(proxies []*netfault.Proxy) (int, error) {
	owner := -1
	hints := make([]string, len(proxies))
	for i, px := range proxies {
		c, err := client.DialTimeout(px.Addr(), time.Second)
		if err != nil {
			return -1, fmt.Errorf("member %d unreachable: %w", i, err)
		}
		_, gerr := c.Get(0)
		c.Close()
		if gerr == nil {
			if owner >= 0 {
				return -1, fmt.Errorf("members %d and %d both claim shard 0", owner, i)
			}
			owner = i
			continue
		}
		if np := isNotPrimaryErr(gerr); np != nil {
			hints[i] = np.Msg
			continue
		}
		return -1, fmt.Errorf("member %d: %w", i, gerr)
	}
	if owner < 0 {
		return -1, fmt.Errorf("no member claims shard 0")
	}
	for i, h := range hints {
		if i != owner && h != proxies[owner].Addr() {
			return -1, fmt.Errorf("member %d redirects to %q, not the claimed owner", i, h)
		}
	}
	return owner, nil
}

// isNotPrimaryErr extracts a cluster redirect from err (nil otherwise).
func isNotPrimaryErr(err error) *wire.Error {
	var we *wire.Error
	if errors.As(err, &we) && we.Status == wire.StatusNotPrimary {
		return we
	}
	return nil
}

// runCluster drives the failover contract end to end against real
// processes: a three-node replicated cluster boots behind per-member
// chaos proxies (the advertised peer addresses ARE the proxies, so
// every redirect a client follows routes through one), n reconnecting
// clients write shard 0 through its primary, the primary is SIGKILLed
// at half-load, and the clients heal onto the promoted ring successor —
// redirect rotation forward, fallback to their home member when the
// rotated address dies. After the failover verdict the victim is
// restarted from its own data directory and must re-converge without
// moving the counter.
//
// The contract checked: the final counter equals EXACTLY n×ops. Every
// acknowledged write waited for the majority quorum (two disks), the
// successor catches up from the surviving quorum member before serving,
// and re-issued in-flight writes carry their original op IDs into the
// replicated dedup window — so the crash neither loses an acked write
// nor doubles a retried one.
func runCluster(out io.Writer, cfg clusterConfig) error {
	dir := cfg.dataDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "kexchaos-cluster-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	realAddrs := make([]string, clusterNodes)
	replAddrs := make([]string, clusterNodes)
	proxies := make([]*netfault.Proxy, clusterNodes)
	var err error
	for i := range realAddrs {
		if realAddrs[i], err = reserveAddr(); err != nil {
			return err
		}
		if replAddrs[i], err = reserveAddr(); err != nil {
			return err
		}
	}
	defer func() {
		for _, px := range proxies {
			if px != nil {
				px.Close()
			}
		}
	}()
	for i := range proxies {
		// Clean relays (empty fault plans): the injected fault in this
		// mode is the SIGKILL; the proxies put the network hop every
		// redirect crosses under the harness's control.
		if proxies[i], err = netfault.New(realAddrs[i], netfault.Plan{Seed: cfg.seed + int64(i)}); err != nil {
			return err
		}
	}

	entries := make([]string, clusterNodes)
	for i := range entries {
		entries[i] = fmt.Sprintf("node-%d=%s/%s", i, proxies[i].Addr(), replAddrs[i])
	}
	peerSpec := strings.Join(entries, ",")

	members := make([]*served, clusterNodes)
	defer func() {
		for _, s := range members {
			if s != nil {
				s.kill() // idempotent; survivors are drained below first
			}
		}
	}()
	// Per-member arg lists are kept so the rejoin phase can restart the
	// killed primary with its exact original identity and data.
	memberArgs := make([][]string, clusterNodes)
	for i := range members {
		memberArgs[i] = []string{
			"-addr", realAddrs[i], "-n", fmt.Sprint(cfg.n), "-k", fmt.Sprint(cfg.k),
			"-shards", fmt.Sprint(clusterShards), "-impl", cfg.impl, "-quiet",
			"-data-dir", filepath.Join(dir, fmt.Sprintf("node-%d", i)),
			"-fsync", cfg.fsync,
			"-node-id", fmt.Sprintf("node-%d", i), "-peers", peerSpec,
			"-quorum", "majority", "-fail-after", cfg.failAfter.String(),
			"-lease", cfg.effLease().String()}
		s, err := startServedArgs(cfg.servedBin, memberArgs[i]...)
		if err != nil {
			return fmt.Errorf("member %d: %w", i, err)
		}
		members[i] = s
	}

	// Wait for a converged ownership view before choosing the victim:
	// killing a member that was about to demote would test nothing.
	primary := -1
	probeDeadline := time.Now().Add(15 * time.Second)
	var probeErr error
	for primary < 0 {
		if time.Now().After(probeDeadline) {
			return fmt.Errorf("cluster never converged on a shard 0 owner: %v", probeErr)
		}
		if primary, probeErr = probeOwner(proxies); probeErr != nil {
			primary = -1
			time.Sleep(50 * time.Millisecond)
		}
	}

	// Every client homes at a follower: its first shard 0 op redirects
	// to the primary (exercising rotation), and after the kill its
	// fallback address is a member that stays alive.
	var followers []int
	for i := range members {
		if i != primary {
			followers = append(followers, i)
		}
	}
	conns := make([]*client.Reconnecting, cfg.n)
	for i := range conns {
		home := proxies[followers[i%len(followers)]].Addr()
		c, err := client.DialReconnecting(home, client.RetryPolicy{
			Seed: cfg.seed + int64(i) + 1,
			// Deterministic, per-client-distinct op-ID identities keep
			// the run reproducible; |1 keeps them nonzero.
			Session:     uint64(cfg.seed+int64(i))<<1 | 1,
			MaxAttempts: 20,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    500 * time.Millisecond,
		}, 2*time.Second)
		if err != nil {
			return fmt.Errorf("client %d admission: %w", i, err)
		}
		defer c.Close()
		conns[i] = c
	}

	// Workers count acknowledged writes; the coordinator SIGKILLs the
	// primary once half the total load is acked, so the crash lands on
	// a quorum-replicated prefix with live traffic on top of it.
	var acked atomic.Int64
	killAt := int64(cfg.n*cfg.ops) / 2
	errs := make([]error, cfg.n)
	var wg sync.WaitGroup
	for i, c := range conns {
		wg.Add(1)
		go func(i int, c *client.Reconnecting) {
			defer wg.Done()
			for op := 0; op < cfg.ops; op++ {
				if _, err := c.AddOp(0, 1); err != nil {
					errs[i] = fmt.Errorf("op %d: %w", op, err)
					return
				}
				acked.Add(1)
			}
		}(i, c)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	killed := make(chan error, 1)
	go func() {
		for acked.Load() < killAt {
			select {
			case <-done:
				killed <- fmt.Errorf("workers stopped at %d/%d acked writes before the kill threshold", acked.Load(), killAt)
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
		// The crash fault: the primary dies and STAYS dead. Progress from
		// here on is the failover's alone.
		members[primary].kill()
		killed <- nil
	}()

	select {
	case <-done:
	case <-time.After(cfg.deadline):
		return fmt.Errorf("loss of progress: clients still running after the %v deadline", cfg.deadline)
	}
	if err := <-killed; err != nil {
		return fmt.Errorf("kill coordinator: %w", err)
	}

	counter, err := conns[0].Get(0)
	if err != nil {
		return fmt.Errorf("verdict read: %w", err)
	}
	// Release the workers' identity leases before the verdict dials:
	// the survivors' n identities may be fully leased to them.
	var dupeAcks, redirects int64
	for _, c := range conns {
		dupeAcks += c.DupeAcks()
		redirects += c.Redirects()
		c.Close()
	}
	survivorStats := make(map[string]wire.Stats, len(followers))
	for _, i := range followers {
		c, err := client.DialTimeout(realAddrs[i], 2*time.Second)
		if err != nil {
			return fmt.Errorf("verdict stats from member %d: %w", i, err)
		}
		st, serr := c.Stats()
		c.Close()
		if serr != nil {
			return fmt.Errorf("verdict stats from member %d: %w", i, serr)
		}
		survivorStats[fmt.Sprintf("node-%d", i)] = st
	}

	completed, failures := 0, 0
	for i, e := range errs {
		if e == nil {
			completed++
		} else {
			failures++
			fmt.Fprintf(out, "client %d failed: %v\n", i, e)
		}
	}
	var quorumAcks int64
	for _, st := range survivorStats {
		quorumAcks += st.QuorumAcks
	}
	want := int64(cfg.n * cfg.ops)
	if counter != want {
		failures++
		fmt.Fprintf(out, "CONTRACT VIOLATION: counter=%d, want exactly %d (lost or doubled acknowledged writes across the failover)\n",
			counter, want)
	}
	if quorumAcks == 0 {
		failures++
		fmt.Fprintf(out, "CONTRACT VIOLATION: quorum_acks=0 on both survivors: no ack waited for the replication quorum\n")
	}
	if redirects == 0 {
		failures++
		fmt.Fprintf(out, "CONTRACT VIOLATION: redirects=0: follower-homed clients never saw a not_primary redirect\n")
	}

	// Rejoin: the failover verdict above is half the contract — the
	// killed primary must also come back cleanly. Restart it from its
	// own data directory with its exact original identity: it catches
	// up from the survivors (any unreplicated fork tail in its WAL is
	// fenced beneath the heir's higher epoch), re-claims its ring-owned
	// shards through the one gated promotion path, and the counter must
	// not move — the fork neither leaks back in nor eats an acked write.
	rejoined, rerr := startServedArgs(cfg.servedBin, memberArgs[primary]...)
	if rerr != nil {
		return fmt.Errorf("rejoin: restarting node-%d: %w", primary, rerr)
	}
	members[primary] = rejoined
	reconvergeDeadline := time.Now().Add(20 * time.Second)
	converged := -1
	var convErr error
	for converged < 0 && !time.Now().After(reconvergeDeadline) {
		if converged, convErr = probeOwner(proxies); convErr != nil {
			converged = -1
			time.Sleep(50 * time.Millisecond)
		}
	}
	if converged < 0 {
		failures++
		fmt.Fprintf(out, "CONTRACT VIOLATION: cluster never re-converged after node-%d rejoined: %v\n", primary, convErr)
	} else {
		c, cerr := client.DialTimeout(proxies[converged].Addr(), 2*time.Second)
		if cerr != nil {
			return fmt.Errorf("rejoin verdict read: %w", cerr)
		}
		after, gerr := c.Get(0)
		c.Close()
		if gerr != nil {
			return fmt.Errorf("rejoin verdict read: %w", gerr)
		}
		if after != want {
			failures++
			fmt.Fprintf(out, "CONTRACT VIOLATION: counter=%d after node-%d rejoined, want %d (a fenced fork leaked back in or an acked write vanished)\n",
				after, primary, want)
		}
	}

	// Drain every member cleanly so their WAL closes are orderly.
	for i := range members {
		members[i].cmd.Process.Signal(syscall.SIGTERM)
	}
	for i := range members {
		select {
		case <-members[i].exited:
		case <-time.After(10 * time.Second):
			members[i].kill()
		}
	}

	if cfg.asJSON {
		b, err := json.MarshalIndent(struct {
			Completed int                   `json:"completed_clients"`
			Clients   int                   `json:"clients"`
			Counter   int64                 `json:"counter"`
			Want      int64                 `json:"want_counter"`
			DupeAcks  int64                 `json:"dupe_acks"`
			Redirects int64                 `json:"redirects"`
			Failures  int                   `json:"violations"`
			Survivors map[string]wire.Stats `json:"survivors"`
		}{completed, cfg.n, counter, want, dupeAcks, redirects, failures, survivorStats}, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s\n", b)
	} else {
		fmt.Fprintf(out, "cluster chaos: impl=%s n=%d k=%d ops=%d fsync=%s seed=%d members=%d quorum=majority\n",
			cfg.impl, cfg.n, cfg.k, cfg.ops, cfg.fsync, cfg.seed, clusterNodes)
		fmt.Fprintf(out, "clients: %d/%d completed; counter=%d (want %d) dupe_acks=%d redirects=%d\n",
			completed, cfg.n, counter, want, dupeAcks, redirects)
		for _, i := range followers {
			st := survivorStats[fmt.Sprintf("node-%d", i)]
			fmt.Fprintf(out, "survivor node-%d: quorum_acks=%d notprimary_redirects=%d replica_lag_lsn=%d\n",
				i, st.QuorumAcks, st.NotPrimaryRedirects, st.ReplicaLagLSN)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d contract violation(s)", failures)
	}
	if !cfg.asJSON {
		fmt.Fprintf(out, "verdict: failover (%d acknowledged writes survived a primary SIGKILL exactly once; node-%d rejoined fenced and re-converged)\n",
			want, primary)
	}
	return nil
}
