package main

import (
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildServed compiles the real kexserved binary once per test binary —
// the -restart harness SIGKILLs a separate process, which an in-process
// server cannot stand in for.
func buildServed(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "kexserved")
	cmd := exec.Command("go", "build", "-o", bin, "kexclusion/cmd/kexserved")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building kexserved: %v\n%s", err, out)
	}
	return bin
}

// TestRestartChaosDurableRun: SIGKILL mid-load, recover from the WAL,
// and every acknowledged write must survive exactly once.
func TestRestartChaosDurableRun(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real subprocesses")
	}
	bin := buildServed(t)
	var b strings.Builder
	err := run([]string{"-restart", "-served-bin", bin, "-n", "4", "-k", "2",
		"-ops", "25", "-seed", "7", "-data-dir", t.TempDir()}, &b)
	if err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	out := b.String()
	if !strings.Contains(out, "counter=100 (want 100)") {
		t.Fatalf("acknowledged writes lost or doubled:\n%s", out)
	}
	if !strings.Contains(out, "restart_count=1") {
		t.Fatalf("missing restart accounting:\n%s", out)
	}
	if !strings.Contains(out, "verdict: durable") {
		t.Fatalf("expected durable verdict:\n%s", out)
	}
}

// TestRestartChaosJSON: the JSON verdict carries the exactly-once
// counter check and the recovered server's stats.
func TestRestartChaosJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real subprocesses")
	}
	bin := buildServed(t)
	var b strings.Builder
	err := run([]string{"-restart", "-served-bin", bin, "-n", "3", "-k", "2",
		"-ops", "10", "-seed", "11", "-fsync", "interval", "-json"}, &b)
	if err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	var got struct {
		Completed int   `json:"completed_clients"`
		Clients   int   `json:"clients"`
		Counter   int64 `json:"counter"`
		Want      int64 `json:"want_counter"`
		Failures  int   `json:"violations"`
		Server    struct {
			RestartCount uint64 `json:"restart_count"`
			RecoveredOps uint64 `json:"recovered_ops"`
		} `json:"server"`
	}
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("bad JSON output: %v\n%s", err, b.String())
	}
	if got.Completed != 3 || got.Counter != 30 || got.Counter != got.Want || got.Failures != 0 {
		t.Fatalf("completed=%d counter=%d want=%d violations=%d:\n%s",
			got.Completed, got.Counter, got.Want, got.Failures, b.String())
	}
	if got.Server.RestartCount != 1 || got.Server.RecoveredOps == 0 {
		t.Fatalf("recovery stats restart_count=%d recovered_ops=%d:\n%s",
			got.Server.RestartCount, got.Server.RecoveredOps, b.String())
	}
}

// TestRestartChaosFlagValidation: -restart is its own mode with its own
// shape.
func TestRestartChaosFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-restart"}, "needs -served-bin"},
		{[]string{"-restart", "-served-bin", "x", "-net"}, "excludes"},
		{[]string{"-restart", "-served-bin", "x", "-all"}, "excludes"},
		{[]string{"-restart", "-served-bin", "x", "-crashes", "2"}, "excludes"},
		{[]string{"-restart", "-served-bin", "x", "-fsync", "never"}, "legally die"},
		{[]string{"-restart", "-served-bin", "x", "-ops", "1"}, "need ops >= 2"},
	} {
		var b strings.Builder
		err := run(tc.args, &b)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v): got %v, want error containing %q", tc.args, err, tc.want)
		}
	}
}
