package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestNetChaosResilientRun: the seeded link-fault plan (partition,
// reset, truncation, slow link) must leave every client completing its
// workload, with the partitioned identity reclaimed by the watchdog.
func TestNetChaosResilientRun(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-net", "-n", "5", "-k", "2", "-ops", "8",
		"-seed", "7", "-idle-timeout", "300ms"}, &b)
	if err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	out := b.String()
	if !strings.Contains(out, "netfault plan seed=7") {
		t.Fatalf("missing plan line:\n%s", out)
	}
	if !strings.Contains(out, "verdict: resilient") {
		t.Fatalf("expected resilient verdict:\n%s", out)
	}
}

// TestNetChaosJSON: the JSON verdict object carries the plan, the
// exactly-once counter check, and both stats snapshots.
func TestNetChaosJSON(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-net", "-n", "5", "-k", "2", "-ops", "6",
		"-seed", "11", "-idle-timeout", "300ms", "-json"}, &b)
	if err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	var got struct {
		Plan       string `json:"plan"`
		Completed  int    `json:"completed_clients"`
		Clients    int    `json:"clients"`
		Counter    int64  `json:"counter"`
		Want       int64  `json:"want_counter"`
		Violations int    `json:"violations"`
		Proxy      struct {
			Accepted int64 `json:"accepted"`
		} `json:"proxy"`
		Server struct {
			IdleReclaims int64 `json:"idle_reclaims"`
		} `json:"server"`
	}
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("bad JSON output: %v\n%s", err, b.String())
	}
	if !strings.Contains(got.Plan, "seed=11") {
		t.Fatalf("plan %q missing seed", got.Plan)
	}
	if got.Completed != got.Clients || got.Clients != 5 {
		t.Fatalf("completed %d of %d clients", got.Completed, got.Clients)
	}
	if got.Counter != got.Want || got.Violations != 0 {
		t.Fatalf("counter=%d want=%d violations=%d", got.Counter, got.Want, got.Violations)
	}
	// Healed victims redial, so the proxy accepted more than n conns.
	if got.Proxy.Accepted <= 5 {
		t.Fatalf("proxy accepted %d conns; faults should force redials", got.Proxy.Accepted)
	}
	if got.Server.IdleReclaims < 1 {
		t.Fatalf("partition never reclaimed by the watchdog:\n%s", b.String())
	}
}

// TestNetChaosCleanRelayBaseline: an empty fault list is a clean relay;
// every client writes, and the counter is exactly n*ops.
func TestNetChaosCleanRelayBaseline(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-net", "-n", "3", "-k", "2", "-ops", "5",
		"-net-kinds", "", "-idle-timeout", "500ms"}, &b)
	if err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "counter=15 (want 15)") {
		t.Fatalf("clean relay lost writes:\n%s", b.String())
	}
}

// TestNetChaosFlagValidation: -net is its own mode with its own shape.
func TestNetChaosFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-net", "-all"}, "excludes"},
		{[]string{"-net", "-shared"}, "excludes"},
		{[]string{"-net", "-crashes", "2"}, "excludes"},
		{[]string{"-net", "-ops", "0"}, "need ops >= 1"},
		{[]string{"-net", "-idle-timeout", "0s"}, "need idle-timeout > 0"},
		{[]string{"-net", "-net-kinds", "reboot"}, "unknown fault kind"},
	} {
		var b strings.Builder
		err := run(tc.args, &b)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v): got %v, want error containing %q", tc.args, err, tc.want)
		}
	}
}
