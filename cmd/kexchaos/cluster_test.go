package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestClusterChaosFailoverRun: boot three real kexserved members,
// SIGKILL the shard 0 primary mid-load, and every acknowledged write
// must survive the failover exactly once.
func TestClusterChaosFailoverRun(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real subprocesses")
	}
	bin := buildServed(t)
	var b strings.Builder
	err := run([]string{"-cluster", "-served-bin", bin, "-n", "4", "-k", "2",
		"-ops", "25", "-seed", "7", "-fail-after", "500ms"}, &b)
	if err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	out := b.String()
	if !strings.Contains(out, "counter=100 (want 100)") {
		t.Fatalf("acknowledged writes lost or doubled:\n%s", out)
	}
	if !strings.Contains(out, "verdict: failover") {
		t.Fatalf("expected failover verdict:\n%s", out)
	}
}

// TestClusterChaosJSON: the JSON verdict carries the exactly-once
// counter check and both survivors' replication stats.
func TestClusterChaosJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real subprocesses")
	}
	bin := buildServed(t)
	var b strings.Builder
	err := run([]string{"-cluster", "-served-bin", bin, "-n", "3", "-k", "2",
		"-ops", "10", "-seed", "11", "-fail-after", "500ms", "-json"}, &b)
	if err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	var got struct {
		Completed int   `json:"completed_clients"`
		Counter   int64 `json:"counter"`
		Want      int64 `json:"want_counter"`
		Redirects int64 `json:"redirects"`
		Failures  int   `json:"violations"`
		Survivors map[string]struct {
			QuorumAcks int64 `json:"quorum_acks"`
		} `json:"survivors"`
	}
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("bad JSON output: %v\n%s", err, b.String())
	}
	if got.Completed != 3 || got.Counter != 30 || got.Counter != got.Want || got.Failures != 0 {
		t.Fatalf("completed=%d counter=%d want=%d violations=%d:\n%s",
			got.Completed, got.Counter, got.Want, got.Failures, b.String())
	}
	if got.Redirects == 0 {
		t.Fatalf("follower-homed clients saw no redirects:\n%s", b.String())
	}
	if len(got.Survivors) != 2 {
		t.Fatalf("survivors=%d, want 2:\n%s", len(got.Survivors), b.String())
	}
	var acks int64
	for _, st := range got.Survivors {
		acks += st.QuorumAcks
	}
	if acks == 0 {
		t.Fatalf("no survivor reports quorum acks:\n%s", b.String())
	}
}

// TestClusterChaosFlagValidation: -cluster is its own mode with its
// own shape.
func TestClusterChaosFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-cluster"}, "needs -served-bin"},
		{[]string{"-cluster", "-served-bin", "x", "-net"}, "excludes"},
		{[]string{"-cluster", "-served-bin", "x", "-restart"}, "excludes"},
		{[]string{"-cluster", "-served-bin", "x", "-all"}, "excludes"},
		{[]string{"-cluster", "-served-bin", "x", "-crashes", "2"}, "excludes"},
		{[]string{"-cluster", "-served-bin", "x", "-fsync", "never"}, "legally die"},
		{[]string{"-cluster", "-served-bin", "x", "-ops", "1"}, "need ops >= 2"},
		{[]string{"-cluster", "-served-bin", "x", "-fail-after", "0s"}, "need fail-after > 0"},
	} {
		var b strings.Builder
		err := run(tc.args, &b)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v): got %v, want error containing %q", tc.args, err, tc.want)
		}
	}
}
