package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"kexclusion/internal/netfault"
	"kexclusion/internal/server"
	"kexclusion/internal/server/client"
	"kexclusion/internal/wire"
)

// netConfig is the -net mode's shape, pre-validated by run.
type netConfig struct {
	impl     string
	n, k     int
	ops      int
	kindsCSV string
	seed     int64
	idle     time.Duration
	deadline time.Duration
	asJSON   bool
}

// runNet drives the robustness stack end to end through real sockets:
// a live server with its session watchdog armed, a netfault chaos proxy
// in front of it, and n reconnecting clients — one per process
// identity, so a client whose link breaks can only be re-admitted after
// the watchdog reclaims its old identity. Victim connections (the ones
// the seeded plan arms a rule on) run idempotent reads, which the retry
// discipline may re-issue across transport loss; healthy connections
// run writes, each of which must land on the counter exactly once.
//
// The contract checked: every client completes its workload despite the
// injected link faults, the counter equals exactly the healthy writes,
// and an injected partition is detected by the watchdog (not merely
// ridden out by a client-side timeout).
func runNet(out io.Writer, cfg netConfig) error {
	kinds, err := netfault.ParseActions(cfg.kindsCSV)
	if err != nil {
		return err
	}

	srv, err := server.New(server.Config{
		N: cfg.n, K: cfg.k, Shards: 1,
		Impl: cfg.impl,
		// Park redials for one watchdog period: a victim that lost its
		// identity to a fault re-admits as soon as the reclaim frees it.
		AdmitTimeout: cfg.idle,
		IdleTimeout:  cfg.idle,
	})
	if err != nil {
		return err
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve() }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-served
	}()

	plan := netfault.NewPlan(cfg.seed, cfg.n, kinds...)
	px, err := netfault.New(addr.String(), plan)
	if err != nil {
		return err
	}
	defer px.Close()

	victim := make(map[int]bool, len(plan.Rules))
	hasPartition := false
	for _, r := range plan.Rules {
		victim[r.Conn] = true
		if r.Act == netfault.Partition {
			hasPartition = true
		}
	}

	// Dial sequentially so client i is proxy connection i: the plan's
	// conn indices name clients deterministically. Redials after a fault
	// land on later (rule-free) connections.
	conns := make([]*client.Reconnecting, cfg.n)
	for i := range conns {
		c, err := client.DialReconnecting(px.Addr(), client.RetryPolicy{
			Seed: cfg.seed + int64(i) + 1,
			// Deterministic, per-client-distinct op-ID identities keep
			// the run reproducible; |1 keeps them nonzero.
			Session:     uint64(cfg.seed+int64(i))<<1 | 1,
			MaxAttempts: 10,
			BaseDelay:   5 * time.Millisecond,
			MaxDelay:    cfg.idle,
		}, 2*cfg.idle)
		if err != nil {
			return fmt.Errorf("client %d admission: %w", i, err)
		}
		defer c.Close()
		conns[i] = c
	}

	// Warm-up round: a scheduler stall during the dial phase can outlast
	// the watchdog and reclaim sessions that never got to operate. An
	// idempotent ping per client self-heals any such casualty before the
	// measured workload begins (redials land on rule-free connections),
	// so the verdict judges the injected faults, not host load.
	for i, c := range conns {
		if err := c.Ping(); err != nil {
			return fmt.Errorf("client %d warm-up: %w", i, err)
		}
	}

	errs := make([]error, cfg.n)
	var wg sync.WaitGroup
	for i, c := range conns {
		wg.Add(1)
		go func(i int, c *client.Reconnecting) {
			defer wg.Done()
			for op := 0; op < cfg.ops; op++ {
				var err error
				if victim[i] {
					_, err = c.Get(0)
				} else {
					_, err = c.Add(0, 1)
				}
				if err != nil {
					errs[i] = fmt.Errorf("op %d: %w", op, err)
					return
				}
			}
		}(i, c)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(cfg.deadline):
		return fmt.Errorf("loss of progress: clients still running after the %v deadline", cfg.deadline)
	}

	counter, err := conns[0].Get(0)
	if err != nil {
		return fmt.Errorf("verdict read: %w", err)
	}
	sstats := srv.Stats()
	pstats := px.Stats()

	completed, failures := 0, 0
	for i, e := range errs {
		if e == nil {
			completed++
		} else {
			failures++
			fmt.Fprintf(out, "client %d failed: %v\n", i, e)
		}
	}
	healthy := cfg.n - len(plan.Rules)
	wantCounter := int64(healthy * cfg.ops)
	if counter != wantCounter {
		failures++
		fmt.Fprintf(out, "CONTRACT VIOLATION: counter=%d, want %d (every healthy write exactly once)\n",
			counter, wantCounter)
	}
	if hasPartition && sstats.IdleReclaims < 1 {
		failures++
		fmt.Fprintf(out, "CONTRACT VIOLATION: a partition was injected but the watchdog reclaimed nothing\n")
	}

	if cfg.asJSON {
		// Unlike the crash-injection report, a network run's counters are
		// schedule-dependent (retry counts, byte totals); only the plan
		// line is a pure function of the seed.
		b, err := json.MarshalIndent(struct {
			Plan       string         `json:"plan"`
			Completed  int            `json:"completed_clients"`
			Clients    int            `json:"clients"`
			Counter    int64          `json:"counter"`
			Want       int64          `json:"want_counter"`
			Violations int            `json:"violations"`
			Server     wire.Stats     `json:"server"`
			Proxy      netfault.Stats `json:"proxy"`
		}{plan.String(), completed, cfg.n, counter, wantCounter, failures, sstats, pstats}, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s\n", b)
	} else {
		fmt.Fprintf(out, "net chaos: impl=%s n=%d k=%d ops=%d idle=%v\n",
			cfg.impl, cfg.n, cfg.k, cfg.ops, cfg.idle)
		fmt.Fprintln(out, plan)
		fmt.Fprintf(out, "clients: %d/%d completed; counter=%d (want %d)\n",
			completed, cfg.n, counter, wantCounter)
		fmt.Fprintf(out, "server: admitted=%d reclaimed=%d idle_reclaims=%d op_deadlines=%d\n",
			sstats.Admitted, sstats.Reclaimed, sstats.IdleReclaims, sstats.OpDeadlines)
		fmt.Fprintf(out, "proxy: partitions=%d resets=%d truncations=%d delayed_chunks=%d bytes_up=%d bytes_down=%d\n",
			pstats.Partitions, pstats.Resets, pstats.Truncations,
			pstats.DelayedChunks, pstats.BytesUp, pstats.BytesDown)
	}
	if failures > 0 {
		return fmt.Errorf("%d contract violation(s)", failures)
	}
	if !cfg.asJSON {
		fmt.Fprintf(out, "verdict: resilient (%d clients completed through %d injected link faults)\n",
			cfg.n, len(plan.Rules))
	}
	return nil
}
