package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"kexclusion/internal/netfault"
	"kexclusion/internal/object"
	"kexclusion/internal/server/client"
	"kexclusion/internal/wire"
)

// restartConfig is the -restart mode's shape, pre-validated by run.
type restartConfig struct {
	impl      string
	n, k      int
	ops       int
	seed      int64
	deadline  time.Duration
	asJSON    bool
	servedBin string
	dataDir   string
	fsync     string
	// restarts is how many kill+restart cycles the mode performs; the
	// verdict asserts the surviving server saw AT LEAST this many prior
	// incarnations. At-least, not exactly: a caller-supplied -data-dir
	// may carry restarts from earlier runs, which are history, not a
	// contract violation.
	restarts int
}

// served is one spawned kexserved process.
type served struct {
	cmd     *exec.Cmd
	addr    string
	stderr  *bytes.Buffer
	exited  chan struct{} // closed when the process is reaped
	exitErr error         // valid after exited is closed
}

// startServed spawns a standalone single-shard kexserved and waits for
// it to bind.
func startServed(bin, addr, dataDir, fsync, impl string, n, k int) (*served, error) {
	return startServedArgs(bin,
		"-addr", addr, "-n", fmt.Sprint(n), "-k", fmt.Sprint(k),
		"-shards", "1", "-impl", impl, "-quiet",
		"-data-dir", dataDir, "-fsync", fsync)
}

// startServedArgs spawns the binary with the given argument list, waits
// for its "listening on" line, and keeps draining stdout so the child
// never blocks on a full pipe.
func startServedArgs(bin string, args ...string) (*served, error) {
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	s := &served{cmd: cmd, stderr: &bytes.Buffer{}, exited: make(chan struct{})}
	cmd.Stderr = s.stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	go func() { s.exitErr = cmd.Wait(); close(s.exited) }()

	bound := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "kexserved: listening on "); ok {
				select {
				case bound <- strings.Fields(rest)[0]:
				default:
				}
			}
		}
	}()
	select {
	case s.addr = <-bound:
		return s, nil
	case <-s.exited:
		return nil, fmt.Errorf("kexserved exited before binding: %v\n%s", s.exitErr, s.stderr.String())
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		return nil, fmt.Errorf("kexserved never announced its address")
	}
}

// kill SIGKILLs the process — the paper's crash fault applied to the
// whole server — and reaps it. Safe to call more than once.
func (s *served) kill() {
	s.cmd.Process.Signal(syscall.SIGKILL)
	<-s.exited
}

// runRestart drives the durability contract end to end against a real
// process: n reconnecting clients write through a chaos proxy at a
// kexserved with a WAL, the server is SIGKILLed mid-load, a new process
// recovers from the same data directory on the same address, and the
// clients ride the outage on their retry budgets — re-issuing any
// in-flight write under its original op ID, so the recovered dedup
// window answers retries of already-applied writes instead of applying
// them again.
//
// The contract checked: the final counter equals EXACTLY n×ops — an
// acknowledged write was neither lost to the crash (durability) nor
// applied twice by a retry (exactly-once) — with restart_count 1 and a
// nonzero recovered_ops backing the story up.
func runRestart(out io.Writer, cfg restartConfig) error {
	dir := cfg.dataDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "kexchaos-restart-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	first, err := startServed(cfg.servedBin, "127.0.0.1:0", dir, cfg.fsync, cfg.impl, cfg.n, cfg.k)
	if err != nil {
		return err
	}
	defer first.kill() // idempotent; the happy path has already killed it

	// Queue exactly-once setup, against the FIRST incarnation: enqueue
	// three values and pop one under a pinned session/seq. Dequeue is
	// the non-idempotent op the dedup window exists for — after the
	// SIGKILL the same pop is re-issued verbatim and must be answered
	// from the recovered window with the original value, not pop again.
	const qName = "chaos:q"
	qSession := uint64(cfg.seed)<<8 | 0x51
	const qDeqSeq = 1_000_000
	var qFirst int64
	{
		qc, err := client.DialTimeout(first.addr, 2*time.Second)
		if err != nil {
			return fmt.Errorf("queue setup dial: %w", err)
		}
		qc.SetSession(qSession)
		if !qc.SupportsObjects() {
			qc.Close()
			return fmt.Errorf("queue setup: server did not negotiate kx05 objects")
		}
		if res, err := qc.CreateOn(0, qName, object.TypeQueue, 0, 1); err != nil || !res.Found {
			qc.Close()
			return fmt.Errorf("queue setup create: %+v %v", res, err)
		}
		for i, v := range []int64{11, 22, 33} {
			if _, err := qc.QEnqOp(0, qName, v, uint64(2+i)); err != nil {
				qc.Close()
				return fmt.Errorf("queue setup enqueue %d: %w", v, err)
			}
		}
		popped, err := qc.QDeqOp(0, qName, qDeqSeq)
		qc.Close()
		if err != nil || !popped.Found {
			return fmt.Errorf("queue setup dequeue: %+v %v", popped, err)
		}
		qFirst = popped.Value
	}

	// The proxy pins the dial address across the restart: clients keep
	// dialing it while the server behind it dies and comes back. An
	// empty plan is a clean relay — the injected fault here is SIGKILL.
	px, err := netfault.New(first.addr, netfault.Plan{Seed: cfg.seed})
	if err != nil {
		return err
	}
	defer px.Close()

	conns := make([]*client.Reconnecting, cfg.n)
	for i := range conns {
		c, err := client.DialReconnecting(px.Addr(), client.RetryPolicy{
			Seed: cfg.seed + int64(i) + 1,
			// Deterministic, per-client-distinct op-ID identities keep
			// the run reproducible; |1 keeps them nonzero.
			Session:     uint64(cfg.seed+int64(i))<<1 | 1,
			MaxAttempts: 12,
			BaseDelay:   5 * time.Millisecond,
			MaxDelay:    250 * time.Millisecond,
		}, 2*time.Second)
		if err != nil {
			return fmt.Errorf("client %d admission: %w", i, err)
		}
		defer c.Close()
		conns[i] = c
	}

	// Workers count acknowledged writes; the coordinator SIGKILLs the
	// server once half the total load is acked, so the crash lands with
	// durable state behind it and live traffic on top of it.
	var acked atomic.Int64
	killAt := int64(cfg.n*cfg.ops) / 2
	errs := make([]error, cfg.n)
	var wg sync.WaitGroup
	for i, c := range conns {
		wg.Add(1)
		go func(i int, c *client.Reconnecting) {
			defer wg.Done()
			for op := 0; op < cfg.ops; op++ {
				if _, err := c.AddOp(0, 1); err != nil {
					errs[i] = fmt.Errorf("op %d: %w", op, err)
					return
				}
				acked.Add(1)
			}
		}(i, c)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	type restartResult struct {
		s   *served
		err error
	}
	restarted := make(chan restartResult, 1)
	go func() {
		for acked.Load() < killAt {
			select {
			case <-done:
				// Workers stopped (all errored out) before the threshold;
				// killing now would just hang the verdict reads.
				restarted <- restartResult{err: fmt.Errorf(
					"workers stopped at %d/%d acked writes before the kill threshold", acked.Load(), killAt)}
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
		first.kill()
		s2, err := startServed(cfg.servedBin, first.addr, dir, cfg.fsync, cfg.impl, cfg.n, cfg.k)
		restarted <- restartResult{s: s2, err: err}
	}()

	select {
	case <-done:
	case <-time.After(cfg.deadline):
		return fmt.Errorf("loss of progress: clients still running after the %v deadline", cfg.deadline)
	}
	res := <-restarted
	if res.err != nil {
		return fmt.Errorf("restart: %w", res.err)
	}
	srv := res.s
	defer srv.kill()

	counter, err := conns[0].Get(0)
	if err != nil {
		return fmt.Errorf("verdict read: %w", err)
	}
	sstats, err := conns[0].Stats()
	if err != nil {
		return fmt.Errorf("verdict stats: %w", err)
	}

	completed, failures := 0, 0
	for i, e := range errs {
		if e == nil {
			completed++
		} else {
			failures++
			fmt.Fprintf(out, "client %d failed: %v\n", i, e)
		}
	}
	dupeAcks := int64(0)
	for _, c := range conns {
		dupeAcks += c.DupeAcks()
	}
	want := int64(cfg.n * cfg.ops)
	if counter != want {
		failures++
		fmt.Fprintf(out, "CONTRACT VIOLATION: counter=%d, want exactly %d (lost or doubled acknowledged writes)\n",
			counter, want)
	}
	if sstats.RestartCount < int64(cfg.restarts) {
		failures++
		fmt.Fprintf(out, "CONTRACT VIOLATION: restart_count=%d, want >= %d\n", sstats.RestartCount, cfg.restarts)
	}
	if sstats.RecoveredOps == 0 {
		failures++
		fmt.Fprintf(out, "CONTRACT VIOLATION: recovered_ops=0: the restarted server recovered nothing\n")
	}

	// Queue exactly-once verdict, against the RESTARTED incarnation:
	// re-issue the pre-crash dequeue verbatim (same session, same seq).
	// The recovered dedup window must answer it with the original value
	// and WasDuplicate set; the queue must still hold exactly two
	// elements (a double pop would leave one); and a fresh dequeue must
	// yield the NEXT element in FIFO order.
	queueExactlyOnce := false
	{
		// The server leases exactly n identities and every worker still
		// holds one; give one back (Close is idempotent, the deferred
		// close is a no-op) and ride out the lease release.
		conns[cfg.n-1].Close()
		var qc *client.Client
		for attempt := 0; ; attempt++ {
			qc, err = client.DialTimeout(first.addr, 2*time.Second)
			if err == nil {
				break
			}
			if attempt >= 40 {
				return fmt.Errorf("queue verdict dial: %w", err)
			}
			time.Sleep(100 * time.Millisecond)
		}
		qc.SetSession(qSession)
		redo, err := qc.QDeqOp(0, qName, qDeqSeq)
		if err != nil {
			qc.Close()
			return fmt.Errorf("queue verdict retry dequeue: %w", err)
		}
		qlen, qfound, err := qc.QLen(qName)
		if err != nil {
			qc.Close()
			return fmt.Errorf("queue verdict length: %w", err)
		}
		next, err := qc.QDeqOp(0, qName, qDeqSeq+1)
		qc.Close()
		if err != nil {
			return fmt.Errorf("queue verdict fresh dequeue: %w", err)
		}
		switch {
		case !redo.WasDuplicate || !redo.Found || redo.Value != qFirst:
			failures++
			fmt.Fprintf(out, "CONTRACT VIOLATION: retried dequeue got %+v, want duplicate ack of value %d\n", redo, qFirst)
		case !qfound || qlen != 2:
			failures++
			fmt.Fprintf(out, "CONTRACT VIOLATION: queue length %d after one dequeue of three (found=%v), want 2 — the retry popped again\n", qlen, qfound)
		case !next.Found || next.Value != 22 || next.WasDuplicate:
			failures++
			fmt.Fprintf(out, "CONTRACT VIOLATION: fresh dequeue got %+v, want value 22 in FIFO order\n", next)
		default:
			queueExactlyOnce = true
		}
	}

	// Drain the survivor cleanly so its own WAL close is orderly.
	srv.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-srv.exited:
	case <-time.After(10 * time.Second):
		srv.kill()
	}

	if cfg.asJSON {
		b, err := json.MarshalIndent(struct {
			Completed int        `json:"completed_clients"`
			Clients   int        `json:"clients"`
			Counter   int64      `json:"counter"`
			Want      int64      `json:"want_counter"`
			DupeAcks  int64      `json:"dupe_acks"`
			QueueOnce bool       `json:"queue_exactly_once"`
			Failures  int        `json:"violations"`
			Server    wire.Stats `json:"server"`
		}{completed, cfg.n, counter, want, dupeAcks, queueExactlyOnce, failures, sstats}, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s\n", b)
	} else {
		fmt.Fprintf(out, "restart chaos: impl=%s n=%d k=%d ops=%d fsync=%s seed=%d\n",
			cfg.impl, cfg.n, cfg.k, cfg.ops, cfg.fsync, cfg.seed)
		fmt.Fprintf(out, "clients: %d/%d completed; counter=%d (want %d) dupe_acks=%d\n",
			completed, cfg.n, counter, want, dupeAcks)
		fmt.Fprintf(out, "server: restart_count=%d recovered_ops=%d applied_dupes=%d admitted=%d\n",
			sstats.RestartCount, sstats.RecoveredOps, sstats.AppliedDupes, sstats.Admitted)
		fmt.Fprintf(out, "queue: exactly_once=%v (dequeue retried across SIGKILL answered from the dedup window)\n",
			queueExactlyOnce)
	}
	if failures > 0 {
		return fmt.Errorf("%d contract violation(s)", failures)
	}
	if !cfg.asJSON {
		fmt.Fprintf(out, "verdict: durable (%d acknowledged writes survived a SIGKILL restart, none doubled)\n", want)
	}
	return nil
}
