package main

import (
	"strings"
	"testing"

	"kexclusion/internal/proto"
)

func TestRunList(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cc-fastpath", "dsm-inductive", "spinfaa"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestRunScenario(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-proto", "cc-fastpath", "-n", "8", "-k", "2", "-contention", "2", "-acqs", "2"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "completed=true") {
		t.Fatalf("expected completed run, got:\n%s", out)
	}
	if !strings.Contains(out, "remote refs per acquisition") {
		t.Fatalf("missing summary line:\n%s", out)
	}
}

func TestRunWithCrashAndTrace(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-proto", "cc-inductive", "-n", "4", "-k", "2",
		"-crash", "1@critical", "-trace", "-sched", "random", "-seed", "3"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "CRASHED") {
		t.Fatalf("trace missing crash event:\n%s", out)
	}
	if !strings.Contains(out, "completed=true") {
		t.Fatalf("survivors should complete:\n%s", out)
	}
}

func TestRunHotWords(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-proto", "spinfaa", "-n", "6", "-k", "2", "-acqs", "2", "-hot", "2"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "hottest words") || !strings.Contains(out, "shared") {
		t.Fatalf("hot-word output missing:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-proto", "no-such"}, &b); err == nil {
		t.Error("expected error for unknown protocol")
	}
	if err := run([]string{"-sched", "alien"}, &b); err == nil {
		t.Error("expected error for unknown scheduler")
	}
	if err := run([]string{"-model", "numa"}, &b); err == nil {
		t.Error("expected error for unknown model")
	}
	if err := run([]string{"-crash", "zap"}, &b); err == nil {
		t.Error("expected error for malformed crash spec")
	}
	if err := run([]string{"-crash", "x@entry"}, &b); err == nil {
		t.Error("expected error for non-numeric crash proc")
	}
	if err := run([]string{"-crash", "1@sleeping"}, &b); err == nil {
		t.Error("expected error for unknown crash phase")
	}
}

func TestParseCrashes(t *testing.T) {
	got, err := parseCrashes("0@entry,2@critical,1@exit")
	if err != nil {
		t.Fatal(err)
	}
	want := []proto.Crash{
		{Proc: 0, Phase: proto.PhaseEntry},
		{Proc: 2, Phase: proto.PhaseCritical},
		{Proc: 1, Phase: proto.PhaseExit},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d crashes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("crash %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestSimFlagShapeValidation: nonsense (n, k) shapes exit with a clear
// error instead of panicking deep inside construction.
func TestSimFlagShapeValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-proto", "cc-tree", "-k", "0"}, "need k >= 1"},
		{[]string{"-proto", "cc-fastpath", "-n", "2", "-k", "4"}, "need n >= k"},
	} {
		var b strings.Builder
		err := run(tc.args, &b)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v): got %v, want error containing %q", tc.args, err, tc.want)
		}
	}
}
