// Command kexsim runs one simulation scenario of a named protocol and
// prints the per-acquisition remote-reference record — useful for
// inspecting a single algorithm's behaviour under a chosen scheduler,
// contention level and crash plan.
//
// Example:
//
//	kexsim -proto cc-fastpath -n 16 -k 4 -contention 4 -acqs 3
//	kexsim -proto dsm-inductive -n 8 -k 2 -sched random -seed 7 -crash 1@critical
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"kexclusion/internal/algo"
	"kexclusion/internal/bench"
	"kexclusion/internal/machine"
	"kexclusion/internal/proto"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kexsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kexsim", flag.ContinueOnError)
	var (
		name       = fs.String("proto", "cc-fastpath", "protocol name (see -list)")
		list       = fs.Bool("list", false, "list protocols and exit")
		modelName  = fs.String("model", "", "machine model: cc or dsm (default: protocol's native model)")
		n          = fs.Int("n", 16, "number of processes")
		k          = fs.Int("k", 4, "critical-section slots")
		contention = fs.Int("contention", 0, "max processes outside noncritical sections (0 = N)")
		acqs       = fs.Int("acqs", 3, "acquisitions per process")
		schedName  = fs.String("sched", "rr", "scheduler: rr, random, burst")
		seed       = fs.Int64("seed", 1, "scheduler seed")
		crashSpec  = fs.String("crash", "", "comma-separated crashes, each proc@phase (phase: entry, critical, exit)")
		showTrace  = fs.Bool("trace", false, "print a statement-level trace of the run")
		hot        = fs.Int("hot", 0, "print the top-N hottest words (remote-reference heat map)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, p := range algo.Names() {
			fmt.Fprintln(out, p)
		}
		return nil
	}

	// Validate the flag shape here so a bad invocation gets a usage
	// error, not a panic from deep inside construction.
	if *k < 1 {
		return fmt.Errorf("need k >= 1, got k=%d", *k)
	}
	if *n < *k {
		return fmt.Errorf("need n >= k, got n=%d k=%d", *n, *k)
	}
	pr, err := algo.ByName(*name)
	if err != nil {
		return err
	}
	model := pr.Traits().Models[0]
	if *modelName != "" {
		if model, err = bench.ModelByName(*modelName); err != nil {
			return err
		}
	}

	var sched machine.Scheduler
	switch *schedName {
	case "rr":
		sched = machine.NewRoundRobin()
	case "random":
		sched = machine.NewRandom(*seed)
	case "burst":
		sched = machine.NewBurst(*seed, 10)
	default:
		return fmt.Errorf("unknown scheduler %q", *schedName)
	}

	crashes, err := parseCrashes(*crashSpec)
	if err != nil {
		return err
	}

	cfg := proto.Config{
		Acquisitions:  *acqs,
		MaxContention: *contention,
		Sched:         sched,
		Crashes:       crashes,
	}
	if *showTrace {
		cfg.Trace = func(ev proto.TraceEvent) {
			if ev.Kind != proto.TraceStep {
				fmt.Fprintln(out, ev)
			}
		}
	}
	mem := machine.NewMem(model, *n)
	inst := pr.Build(mem, *n, *k, proto.BuildOptions{MaxAcquisitions: *acqs})
	res := proto.Run(mem, inst, pr.Traits().Assignment, cfg)

	fmt.Fprintf(out, "%s on %s: N=%d k=%d contention<=%d acqs=%d sched=%s\n",
		pr.Name(), model, *n, *k, *contention, *acqs, *schedName)
	fmt.Fprintf(out, "steps=%d completed=%v max CS occupancy=%d max bypassed=%d\n",
		res.Steps, res.Completed, res.MaxOccupancy, res.MaxBypassed)
	for _, v := range res.Violations {
		fmt.Fprintln(out, "VIOLATION:", v)
	}
	w := tabwriter.NewWriter(out, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "proc\tentry remote\texit remote\ttotal\tentry steps\tbypassed")
	for _, r := range res.Records {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\n",
			r.Proc, r.EntryRemote, r.ExitRemote, r.Total(), r.EntrySteps, r.Bypassed)
	}
	w.Flush()
	fmt.Fprintf(out, "max %d, mean %.1f remote refs per acquisition\n", res.MaxAcqRemote, res.MeanAcqRemote)
	if *hot > 0 {
		fmt.Fprintf(out, "hottest words (by remote references):\n")
		hw := tabwriter.NewWriter(out, 2, 0, 2, ' ', 0)
		fmt.Fprintln(hw, "addr\thome\tremote refs")
		for _, word := range mem.HotWords(*hot) {
			home := "shared"
			if word.Home >= 0 {
				home = fmt.Sprintf("p%d", word.Home)
			}
			fmt.Fprintf(hw, "%d\t%s\t%d\n", word.Addr, home, word.Remote)
		}
		hw.Flush()
	}
	return nil
}

func parseCrashes(spec string) ([]proto.Crash, error) {
	if spec == "" {
		return nil, nil
	}
	var out []proto.Crash
	for _, part := range strings.Split(spec, ",") {
		fields := strings.SplitN(part, "@", 2)
		if len(fields) != 2 {
			return nil, fmt.Errorf("bad crash spec %q (want proc@phase)", part)
		}
		p, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("bad crash proc %q: %w", fields[0], err)
		}
		var ph proto.Phase
		switch fields[1] {
		case "entry":
			ph = proto.PhaseEntry
		case "critical":
			ph = proto.PhaseCritical
		case "exit":
			ph = proto.PhaseExit
		default:
			return nil, fmt.Errorf("bad crash phase %q", fields[1])
		}
		out = append(out, proto.Crash{Proc: p, Phase: ph})
	}
	return out, nil
}
