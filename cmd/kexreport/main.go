// Command kexreport regenerates EXPERIMENTS.md: it runs the full
// evaluation — Table 1, Theorems 1-10, the Figure 3 contention sweep,
// the k=1 spin-lock comparison and the model-checking summary — and
// writes the paper-vs-measured markdown record.
//
//	go run ./cmd/kexreport > EXPERIMENTS.md
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"kexclusion/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kexreport:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kexreport", flag.ContinueOnError)
	var (
		n     = fs.Int("n", 32, "number of processes")
		k     = fs.Int("k", 4, "critical-section slots")
		seeds = fs.Int("seeds", 8, "adversarial scheduler seeds per measurement")
		acqs  = fs.Int("acqs", 4, "acquisitions per process per run")
		fast  = fs.Bool("fast", false, "skip the slow model-checking configurations")
		stamp = fs.Bool("timestamp", false, "stamp the generation time at the end (off by default so regeneration is byte-stable)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *k < 1 || *n <= *k {
		return fmt.Errorf("need 0 < k < n, got n=%d k=%d", *n, *k)
	}
	cfg := bench.ReportConfig{
		N: *n, K: *k,
		Options:        bench.Options{Seeds: *seeds, Acquisitions: *acqs},
		SkipSlowChecks: *fast,
	}
	if *stamp {
		cfg.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	}
	return bench.WriteReport(out, cfg)
}
