package main

import (
	"strings"
	"testing"
)

func TestReportGeneration(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-n", "8", "-k", "2", "-seeds", "1", "-acqs", "2", "-fast"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# Experiments: paper vs. measured",
		"## Table 1",
		"## Theorems 1–10",
		"## Figure 3",
		"k=1 corner",
		"mechanized safety",
		"exhaustively verified",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "VIOLATION") {
		t.Error("report contains a safety violation")
	}
}

func TestReportFlagValidation(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "2", "-k", "2"}, &b); err == nil {
		t.Error("expected error for n <= k")
	}
}
