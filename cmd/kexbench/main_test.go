package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestBenchTable1(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-table1", "-n", "8", "-k", "2", "-seeds", "1", "-acqs", "2"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table 1 (reproduced)", "cc-fastpath", "Thm. 3", "spinfaa"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestBenchTheorems(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-theorems", "-seeds", "1", "-acqs", "2"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Theorem 1", "Theorem 10", "paper bound"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "\tfalse\n") {
		t.Error("a theorem sweep exceeded its bound")
	}
}

func TestBenchFig3bAndK1(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-fig3b", "-k1", "-n", "8", "-k", "2", "-seeds", "1", "-acqs", "2"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Fig. 3 sweep", "cc-graceful", "k=1 comparison", "mcs"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestBenchFlagValidation(t *testing.T) {
	var b strings.Builder
	if err := run([]string{}, &b); err == nil {
		t.Error("expected error with no experiment selected")
	}
	if err := run([]string{"-table1", "-n", "2", "-k", "3"}, &b); err == nil {
		t.Error("expected error for n < k")
	}
	if err := run([]string{"-fig3b", "-model", "numa"}, &b); err == nil {
		t.Error("expected error for bad model")
	}
}

func TestBenchNativeJSON(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-native", "-json", "-n", "6", "-k", "2", "-acqs", "2", "-seed", "9"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"\"seed\": 9", "\"impl\": \"fastpath\"", "\"impl\": \"fastpath+shared\"", "\"latency_ns_pow2\""} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON output missing %q", want)
		}
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("JSON artifact must end in a newline")
	}
}

func TestBenchNativeText(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-native", "-n", "6", "-k", "2", "-acqs", "2"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "native runtime sweep") {
		t.Errorf("text output missing header:\n%s", b.String())
	}
	if err := run([]string{"-table1", "-json"}, &b); err == nil {
		t.Error("expected error: -json without -native")
	}
}

// TestBenchFlagShapeValidation: nonsense (n, k) shapes exit with a clear
// error instead of panicking deep inside construction.
func TestBenchFlagShapeValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-table1", "-k", "0"}, "need k >= 1"},
		{[]string{"-native", "-n", "2", "-k", "4"}, "need n >= k"},
	} {
		var b strings.Builder
		err := run(tc.args, &b)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v): got %v, want error containing %q", tc.args, err, tc.want)
		}
	}
	// n == k is a legal shape, not a usage error.
	var b strings.Builder
	if err := run([]string{"-table1", "-n", "2", "-k", "2", "-seeds", "1", "-acqs", "1"}, &b); err != nil {
		t.Errorf("n == k rejected: %v", err)
	}
}

func TestBenchNetShortSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a real loopback server with per-op fsync")
	}
	var b strings.Builder
	// Tiny cell sizes: this asserts plumbing and schema, not the
	// headline speedup (CI's smoke job greps the full -short verdict).
	err := run([]string{"-net", "-conns", "1", "-depths", "1,8", "-fsync", "always", "-net-ops", "48"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"network hot path sweep", "speedup:", "verdict:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q in:\n%s", want, out)
		}
	}
}

func TestBenchNetJSONSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a real loopback server")
	}
	var b strings.Builder
	err := run([]string{"-net", "-json", "-conns", "1", "-depths", "1,4", "-fsync", "interval", "-net-ops", "16"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema string `json:"schema"`
		Rows   []struct {
			Fsync     string  `json:"fsync"`
			Conns     int     `json:"conns"`
			Depth     int     `json:"depth"`
			Ops       int     `json:"ops"`
			OpsPerSec float64 `json:"ops_per_sec"`
		} `json:"rows"`
		Verdict string `json:"verdict"`
	}
	if err := json.Unmarshal([]byte(b.String()), &rep); err != nil {
		t.Fatalf("BENCH_net output is not JSON: %v", err)
	}
	if rep.Schema != "kexbench/net/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if len(rep.Rows) != 2 || rep.Rows[0].Ops != 16 {
		t.Errorf("rows = %+v", rep.Rows)
	}
	if rep.Verdict == "" {
		t.Error("verdict missing")
	}
}

func TestBenchClusterJSONSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("boots three in-process cluster members per cell")
	}
	var b strings.Builder
	err := run([]string{"-cluster", "-json", "-short", "-net-ops", "16"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema string `json:"schema"`
		Nodes  int    `json:"nodes"`
		Rows   []struct {
			Quorum    string  `json:"quorum"`
			Acks      int     `json:"acks"`
			Ops       int     `json:"ops"`
			Errors    int     `json:"errors"`
			OpsPerSec float64 `json:"ops_per_sec"`
		} `json:"rows"`
		Verdict string `json:"verdict"`
	}
	if err := json.Unmarshal([]byte(b.String()), &rep); err != nil {
		t.Fatalf("BENCH_cluster output is not JSON: %v", err)
	}
	if rep.Schema != "kexbench/cluster/v1" || rep.Nodes != 3 {
		t.Errorf("schema = %q nodes = %d", rep.Schema, rep.Nodes)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %+v, want the 1/majority/all sweep", rep.Rows)
	}
	for i, want := range []struct {
		quorum string
		acks   int
	}{{"1", 1}, {"majority", 2}, {"all", 3}} {
		if rep.Rows[i].Quorum != want.quorum || rep.Rows[i].Acks != want.acks {
			t.Errorf("row %d = %+v, want quorum %s acks %d", i, rep.Rows[i], want.quorum, want.acks)
		}
		if rep.Rows[i].Ops != 32 || rep.Rows[i].Errors != 0 {
			t.Errorf("row %d = %+v: load incomplete", i, rep.Rows[i])
		}
	}
	if rep.Verdict != "replicated" {
		t.Errorf("verdict = %q", rep.Verdict)
	}
}

func TestBenchNetFlagValidation(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-net", "-conns", "0"}, &b); err == nil {
		t.Error("expected error for -conns 0")
	}
	if err := run([]string{"-net", "-depths", "x"}, &b); err == nil {
		t.Error("expected error for malformed -depths")
	}
	if err := run([]string{"-net", "-fsync", "sometimes"}, &b); err == nil {
		t.Error("expected error for unknown fsync policy")
	}
	if err := run([]string{"-json", "-table1"}, &b); err == nil {
		t.Error("expected error for -json without -native or -net")
	}
}

func TestBenchObjectsJSONSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a real loopback server per matrix cell")
	}
	var b strings.Builder
	err := run([]string{"-objects", "-json", "-obj-dists", "zipfian", "-obj-keys", "32", "-net-ops", "12"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema string `json:"schema"`
		Rows   []struct {
			Mix          string  `json:"mix"`
			Dist         string  `json:"dist"`
			Ops          int     `json:"ops"`
			Errors       int     `json:"errors"`
			OpsPerSec    float64 `json:"ops_per_sec"`
			ReadFastpath int64   `json:"read_fastpath"`
			BatchAtomic  int64   `json:"batch_atomic"`
		} `json:"rows"`
		Verdict string `json:"verdict"`
	}
	if err := json.Unmarshal([]byte(b.String()), &rep); err != nil {
		t.Fatalf("BENCH_objects output is not JSON: %v", err)
	}
	if rep.Schema != "kexbench/objects/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if len(rep.Rows) != 4 { // mixes A, B, C, X over one distribution
		t.Fatalf("rows = %d, want 4: %+v", len(rep.Rows), rep.Rows)
	}
	for _, r := range rep.Rows {
		if r.Errors != 0 || r.Ops == 0 {
			t.Errorf("cell %s/%s: ops=%d errors=%d", r.Mix, r.Dist, r.Ops, r.Errors)
		}
		if r.Mix == "X" && r.BatchAtomic != int64(r.Ops) {
			t.Errorf("X mix committed %d atomic groups, want %d", r.BatchAtomic, r.Ops)
		}
		if r.Mix == "C" && r.ReadFastpath < int64(r.Ops) {
			t.Errorf("C mix took the fast path %d times, want >= %d", r.ReadFastpath, r.Ops)
		}
	}
	if rep.Verdict != "objects" {
		t.Errorf("verdict = %q, want objects", rep.Verdict)
	}
}

func TestBenchObjectsFlagValidation(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-objects", "-obj-dists", "bogus"}, &b); err == nil {
		t.Error("unknown distribution accepted")
	}
	if err := run([]string{"-objects", "-obj-dists", " , "}, &b); err == nil {
		t.Error("empty distribution list accepted")
	}
}
