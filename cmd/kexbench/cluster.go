package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"kexclusion/internal/cluster"
	"kexclusion/internal/durable"
	"kexclusion/internal/server"
	"kexclusion/internal/server/client"
)

// clusterBenchConfig shapes one -cluster sweep: the same pipelined
// write workload against a fresh in-process three-node cluster at each
// ack quorum — 1 (local durability only), majority (2), and all (3) —
// so the report prices exactly what each added replication ack costs
// the hot path.
type clusterBenchConfig struct {
	Nodes      int
	Conns      int
	Depth      int
	OpsPerConn int
	Shards     int
	K          int
}

// clusterRow is one measured cell. The JSON field set is the
// BENCH_cluster schema — append fields if needed, never rename or
// remove.
type clusterRow struct {
	Quorum    string  `json:"quorum"` // the spelling: 1, majority, all
	Acks      int     `json:"acks"`   // the resolved node count
	Conns     int     `json:"conns"`
	Depth     int     `json:"depth"`
	Ops       int     `json:"ops"`
	Errors    int     `json:"errors"`
	ElapsedMS float64 `json:"elapsed_ms"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// clusterSlowdown compares a quorum cell against the quorum-1 baseline.
type clusterSlowdown struct {
	Quorum   string  `json:"quorum"`
	Slowdown float64 `json:"slowdown"` // baseline ops/sec ÷ this cell's
}

type clusterReport struct {
	Schema     string            `json:"schema"`
	Nodes      int               `json:"nodes"`
	OpsPerConn int               `json:"ops_per_conn"`
	Shards     int               `json:"shards"`
	K          int               `json:"k"`
	Rows       []clusterRow      `json:"rows"`
	Slowdowns  []clusterSlowdown `json:"slowdowns"`
	// Verdict is "replicated" when every cell completed its full load
	// error-free at its quorum, else "errors". Relative throughput is
	// reported, not gated: CI machines are too noisy to fail on it.
	Verdict string `json:"verdict"`
}

const clusterSchema = "kexbench/cluster/v1"

// reserveAddr grabs an ephemeral localhost port and releases it for a
// server to rebind: every member's address must be in every member's
// peer list before any member exists.
func reserveAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// runClusterBench sweeps the ack quorum and emits the report.
func runClusterBench(cfg clusterBenchConfig, out io.Writer, asJSON bool) error {
	rep := clusterReport{Schema: clusterSchema, Nodes: cfg.Nodes,
		OpsPerConn: cfg.OpsPerConn, Shards: cfg.Shards, K: cfg.K}
	quorums := []struct {
		label string
		acks  int
	}{
		{"1", 1},
		{"majority", cfg.Nodes/2 + 1},
		{"all", cfg.Nodes},
	}
	for _, q := range quorums {
		row, err := clusterCell(cfg, q.label, q.acks)
		if err != nil {
			return fmt.Errorf("cell quorum=%s: %w", q.label, err)
		}
		rep.Rows = append(rep.Rows, row)
	}

	rep.Verdict = "replicated"
	var base float64
	for _, r := range rep.Rows {
		if r.Errors > 0 {
			rep.Verdict = "errors"
		}
		if r.Quorum == "1" {
			base = r.OpsPerSec
		}
	}
	for _, r := range rep.Rows {
		if r.Quorum == "1" || base <= 0 || r.OpsPerSec <= 0 {
			continue
		}
		rep.Slowdowns = append(rep.Slowdowns, clusterSlowdown{Quorum: r.Quorum, Slowdown: base / r.OpsPerSec})
	}

	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Fprintf(out, "cluster quorum sweep (%d nodes, %d conns x %d ops, depth %d, %d shards, k=%d)\n",
		cfg.Nodes, cfg.Conns, cfg.OpsPerConn, cfg.Depth, cfg.Shards, cfg.K)
	fmt.Fprintf(out, "%-10s %6s %6s %10s %8s %12s\n", "quorum", "acks", "conns", "ops", "errs", "ops/sec")
	for _, r := range rep.Rows {
		fmt.Fprintf(out, "%-10s %6d %6d %10d %8d %12.0f\n", r.Quorum, r.Acks, r.Conns, r.Ops, r.Errors, r.OpsPerSec)
	}
	for _, s := range rep.Slowdowns {
		fmt.Fprintf(out, "slowdown: quorum=%s vs 1: %.2fx\n", s.Quorum, s.Slowdown)
	}
	fmt.Fprintf(out, "verdict: %s\n", rep.Verdict)
	return nil
}

// clusterCell boots a fresh in-process cluster at the given ack quorum,
// drives the pipelined write load at shard 0's primary, and tears the
// cluster down.
func clusterCell(cfg clusterBenchConfig, label string, acks int) (clusterRow, error) {
	dir, err := os.MkdirTemp("", "kexbench-cluster-")
	if err != nil {
		return clusterRow{}, err
	}
	defer os.RemoveAll(dir)

	peers := make([]cluster.Peer, cfg.Nodes)
	for i := range peers {
		peers[i].ID = fmt.Sprintf("node-%d", i)
		if peers[i].ClientAddr, err = reserveAddr(); err != nil {
			return clusterRow{}, err
		}
		if peers[i].ReplAddr, err = reserveAddr(); err != nil {
			return clusterRow{}, err
		}
	}

	n := cfg.Conns + 2 // headroom so admission never sheds the drivers
	k := cfg.K
	if k > n {
		k = n
	}
	servers := make([]*server.Server, cfg.Nodes)
	defer func() {
		for _, s := range servers {
			if s != nil {
				ctx, cancel := shutdownCtx()
				s.Shutdown(ctx)
				cancel()
			}
		}
	}()
	for i, p := range peers {
		srv, err := server.New(server.Config{
			N: n, K: k, Shards: cfg.Shards,
			AdmitTimeout: 5 * time.Second,
			DataDir:      filepath.Join(dir, p.ID),
			Fsync:        durable.SyncAlways,
			Cluster: &server.ClusterConfig{
				NodeID: p.ID, Peers: peers, Quorum: acks,
				PullWait: 50 * time.Millisecond,
			},
			Logf: func(string, ...any) {},
		})
		if err != nil {
			return clusterRow{}, err
		}
		if _, err := srv.Listen(p.ClientAddr); err != nil {
			return clusterRow{}, err
		}
		go srv.Serve()
		servers[i] = srv
	}

	// Find shard 0's primary; the ring is up as soon as every member is
	// serving its owned shards.
	owner := -1
	deadline := time.Now().Add(10 * time.Second)
	for owner < 0 {
		if time.Now().After(deadline) {
			return clusterRow{}, fmt.Errorf("no member claimed shard 0")
		}
		for i, s := range servers {
			if s.Node().Owns(0) {
				owner = i
				break
			}
		}
		if owner < 0 {
			time.Sleep(10 * time.Millisecond)
		}
	}

	conns := make([]*client.Reconnecting, cfg.Conns)
	for i := range conns {
		c, err := client.DialReconnecting(peers[owner].ClientAddr, client.RetryPolicy{
			Seed: int64(i) + 1, Session: uint64(i)<<1 | 1,
			MaxAttempts: 8, BaseDelay: 5 * time.Millisecond, MaxDelay: 250 * time.Millisecond,
		}, 30*time.Second)
		if err != nil {
			return clusterRow{}, err
		}
		defer c.Close()
		conns[i] = c
	}

	var wg sync.WaitGroup
	errCounts := make([]int, cfg.Conns)
	start := time.Now()
	for i, c := range conns {
		wg.Add(1)
		go func(i int, c *client.Reconnecting) {
			defer wg.Done()
			p := c.Pipeline(cfg.Depth)
			pend := make([]*client.PipelineOp, 0, cfg.Depth)
			drain := func() {
				for _, op := range pend {
					if _, err := op.Wait(); err != nil {
						errCounts[i]++
					}
				}
				pend = pend[:0]
			}
			for op := 0; op < cfg.OpsPerConn; op++ {
				pend = append(pend, p.Add(0, 1))
				if len(pend) >= cfg.Depth {
					drain()
				}
			}
			drain()
		}(i, c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := cfg.Conns * cfg.OpsPerConn
	nerr := 0
	for _, e := range errCounts {
		nerr += e
	}
	row := clusterRow{
		Quorum: label, Acks: acks, Conns: cfg.Conns, Depth: cfg.Depth,
		Ops: total, Errors: nerr,
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
	}
	if elapsed > 0 {
		row.OpsPerSec = float64(total-nerr) / elapsed.Seconds()
	}
	return row, nil
}
