// Command kexbench regenerates the paper's evaluation artifacts on the
// simulated CC and DSM machines: the Table 1 algorithm comparison, the
// Theorem 1-10 complexity sweeps, and the Figure 3(b) contention sweep.
//
// Usage:
//
//	kexbench -table1            reproduce Table 1 (default N=32, k=4)
//	kexbench -theorems          sweep every theorem against its bound
//	kexbench -fig3b             tree vs fast path vs graceful sweep
//	kexbench -all               everything above (simulated machines)
//	kexbench -native            drive the real goroutine implementations
//	kexbench -native -json      ... emitting the metrics report as JSON
//	                            (redirect to BENCH_native.json)
//	kexbench -cluster -json     price the replication ack quorum, 1 vs
//	                            majority vs all (redirect to BENCH_cluster.json)
//	kexbench -objects -json     YCSB-style typed-object matrix: A/B/C mixes
//	                            plus atomic transfers × uniform/zipfian/
//	                            hot-shard (redirect to BENCH_objects.json)
//	kexbench -n 64 -k 8 ...     change the configuration
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"kexclusion/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kexbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kexbench", flag.ContinueOnError)
	var (
		table1   = fs.Bool("table1", false, "reproduce Table 1")
		theorems = fs.Bool("theorems", false, "sweep Theorems 1-10 against their bounds")
		fig3b    = fs.Bool("fig3b", false, "contention sweep comparing tree, fast path and graceful (Figure 3)")
		k1       = fs.Bool("k1", false, "k=1 comparison against the MCS and ticket spin locks (concluding remarks)")
		all      = fs.Bool("all", false, "run every simulated-machine experiment")
		native   = fs.Bool("native", false, "run the fixed seeded workload on the real goroutine implementations")
		asJSON   = fs.Bool("json", false, "with -native: emit the metrics report as JSON")
		n        = fs.Int("n", 32, "number of processes")
		k        = fs.Int("k", 4, "critical-section slots")
		seeds    = fs.Int("seeds", 8, "adversarial scheduler seeds per measurement")
		acqs     = fs.Int("acqs", 4, "acquisitions per process per run")
		seed     = fs.Int64("seed", 1, "workload seed for -native")
		model    = fs.String("model", "cc", "machine model for -fig3b (cc or dsm)")
		netMode  = fs.Bool("net", false, "sweep the network hot path (connections × pipeline depth × fsync) over a loopback server")
		conns    = fs.String("conns", "1,4", "with -net: comma-separated connection counts")
		depths   = fs.String("depths", "1,8", "with -net: comma-separated pipeline depths")
		fsyncs   = fs.String("fsync", "always,interval", "with -net: comma-separated fsync policies to sweep")
		netOps   = fs.Int("net-ops", 512, "with -net, -cluster, or -objects: operations per connection per cell")
		clMode   = fs.Bool("cluster", false, "sweep the replication ack quorum (1 vs majority vs all) over an in-process 3-node cluster")
		objMode  = fs.Bool("objects", false, "YCSB-style workload matrix over the kx05 typed-object store (mixes × key distributions)")
		objDists = fs.String("obj-dists", "uniform,zipfian,hotshard", "with -objects: comma-separated key distributions")
		objKeys  = fs.Int("obj-keys", 256, "with -objects: size of the key space")
		short    = fs.Bool("short", false, "with -net, -cluster, or -objects: minimal smoke sweep (fewer drivers and ops)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *all {
		*table1, *theorems, *fig3b, *k1 = true, true, true, true
	}
	if !*table1 && !*theorems && !*fig3b && !*k1 && !*native && !*netMode && !*clMode && !*objMode {
		fs.Usage()
		return fmt.Errorf("pick at least one of -table1, -theorems, -fig3b, -k1, -native, -net, -cluster, -objects, -all")
	}
	if *asJSON && !*native && !*netMode && !*clMode && !*objMode {
		return fmt.Errorf("-json applies only to -native, -net, -cluster, and -objects")
	}
	if *objMode {
		oc := objConfig{Mixes: objMixes, Conns: 4, OpsPerConn: *netOps,
			Keys: *objKeys, Shards: 4, K: 4, Depth: 8, Seed: *seed}
		for _, d := range strings.Split(*objDists, ",") {
			if d = strings.TrimSpace(d); d != "" {
				oc.Dists = append(oc.Dists, d)
			}
		}
		if len(oc.Dists) == 0 {
			return fmt.Errorf("-obj-dists: empty list")
		}
		if *short {
			oc.Conns, oc.Dists, oc.Keys = 2, []string{"zipfian"}, 64
			if oc.OpsPerConn > 64 {
				oc.OpsPerConn = 64
			}
		}
		return runObjects(oc, out, *asJSON)
	}
	if *clMode {
		cc := clusterBenchConfig{Nodes: 3, Conns: 4, Depth: 8, OpsPerConn: *netOps, Shards: 4, K: 4}
		if *short {
			cc.Conns = 2
			if cc.OpsPerConn > 64 {
				cc.OpsPerConn = 64
			}
		}
		return runClusterBench(cc, out, *asJSON)
	}
	if *netMode {
		nc := netConfig{OpsPerConn: *netOps, Shards: 4, K: 4}
		var err error
		if nc.Conns, err = parseIntList("conns", *conns); err != nil {
			return err
		}
		if nc.Depths, err = parseIntList("depths", *depths); err != nil {
			return err
		}
		nc.Fsyncs = nil
		for _, f := range strings.Split(*fsyncs, ",") {
			if f = strings.TrimSpace(f); f != "" {
				nc.Fsyncs = append(nc.Fsyncs, f)
			}
		}
		if len(nc.Fsyncs) == 0 {
			return fmt.Errorf("-fsync: empty list")
		}
		if *short {
			nc.Conns, nc.Depths, nc.Fsyncs = []int{1}, []int{1, 8}, []string{"always"}
			if nc.OpsPerConn > 128 {
				nc.OpsPerConn = 128
			}
		}
		return runNet(nc, out, *asJSON)
	}
	if *k < 1 {
		return fmt.Errorf("need k >= 1, got k=%d", *k)
	}
	if *n < *k {
		return fmt.Errorf("need n >= k, got n=%d k=%d", *n, *k)
	}
	opt := bench.Options{Seeds: *seeds, Acquisitions: *acqs}

	if *table1 {
		rows := bench.Table1(*n, *k, opt)
		fmt.Fprintln(out, bench.FormatTable1(rows, *n, *k))
	}
	if *theorems {
		fmt.Fprintln(out, bench.AllTheorems(opt))
	}
	if *fig3b {
		m, err := bench.ModelByName(*model)
		if err != nil {
			return err
		}
		cs := bench.ContentionLevels(*n, *k)
		for _, s := range bench.Fig3bSweep(m, *n, *k, cs, opt) {
			fmt.Fprintln(out, s.Format())
		}
	}
	if *k1 {
		fmt.Fprintln(out, bench.K1Comparison(*n, opt))
	}
	if *native {
		rep := bench.RunNative(bench.NativeConfig{N: *n, K: *k, OpsPerProc: *acqs, Seed: *seed})
		if *asJSON {
			out.Write(rep.JSON())
		} else {
			fmt.Fprint(out, rep)
		}
	}
	return nil
}
