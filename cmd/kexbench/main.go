// Command kexbench regenerates the paper's evaluation artifacts on the
// simulated CC and DSM machines: the Table 1 algorithm comparison, the
// Theorem 1-10 complexity sweeps, and the Figure 3(b) contention sweep.
//
// Usage:
//
//	kexbench -table1            reproduce Table 1 (default N=32, k=4)
//	kexbench -theorems          sweep every theorem against its bound
//	kexbench -fig3b             tree vs fast path vs graceful sweep
//	kexbench -all               everything above (simulated machines)
//	kexbench -native            drive the real goroutine implementations
//	kexbench -native -json      ... emitting the metrics report as JSON
//	                            (redirect to BENCH_native.json)
//	kexbench -n 64 -k 8 ...     change the configuration
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"kexclusion/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kexbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kexbench", flag.ContinueOnError)
	var (
		table1   = fs.Bool("table1", false, "reproduce Table 1")
		theorems = fs.Bool("theorems", false, "sweep Theorems 1-10 against their bounds")
		fig3b    = fs.Bool("fig3b", false, "contention sweep comparing tree, fast path and graceful (Figure 3)")
		k1       = fs.Bool("k1", false, "k=1 comparison against the MCS and ticket spin locks (concluding remarks)")
		all      = fs.Bool("all", false, "run every simulated-machine experiment")
		native   = fs.Bool("native", false, "run the fixed seeded workload on the real goroutine implementations")
		asJSON   = fs.Bool("json", false, "with -native: emit the metrics report as JSON")
		n        = fs.Int("n", 32, "number of processes")
		k        = fs.Int("k", 4, "critical-section slots")
		seeds    = fs.Int("seeds", 8, "adversarial scheduler seeds per measurement")
		acqs     = fs.Int("acqs", 4, "acquisitions per process per run")
		seed     = fs.Int64("seed", 1, "workload seed for -native")
		model    = fs.String("model", "cc", "machine model for -fig3b (cc or dsm)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *all {
		*table1, *theorems, *fig3b, *k1 = true, true, true, true
	}
	if !*table1 && !*theorems && !*fig3b && !*k1 && !*native {
		fs.Usage()
		return fmt.Errorf("pick at least one of -table1, -theorems, -fig3b, -k1, -native, -all")
	}
	if *asJSON && !*native {
		return fmt.Errorf("-json applies only to -native")
	}
	if *k < 1 {
		return fmt.Errorf("need k >= 1, got k=%d", *k)
	}
	if *n < *k {
		return fmt.Errorf("need n >= k, got n=%d k=%d", *n, *k)
	}
	opt := bench.Options{Seeds: *seeds, Acquisitions: *acqs}

	if *table1 {
		rows := bench.Table1(*n, *k, opt)
		fmt.Fprintln(out, bench.FormatTable1(rows, *n, *k))
	}
	if *theorems {
		fmt.Fprintln(out, bench.AllTheorems(opt))
	}
	if *fig3b {
		m, err := bench.ModelByName(*model)
		if err != nil {
			return err
		}
		cs := bench.ContentionLevels(*n, *k)
		for _, s := range bench.Fig3bSweep(m, *n, *k, cs, opt) {
			fmt.Fprintln(out, s.Format())
		}
	}
	if *k1 {
		fmt.Fprintln(out, bench.K1Comparison(*n, opt))
	}
	if *native {
		rep := bench.RunNative(bench.NativeConfig{N: *n, K: *k, OpsPerProc: *acqs, Seed: *seed})
		if *asJSON {
			out.Write(rep.JSON())
		} else {
			fmt.Fprint(out, rep)
		}
	}
	return nil
}
