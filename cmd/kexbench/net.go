package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"kexclusion/internal/durable"
	"kexclusion/internal/server"
	"kexclusion/internal/server/client"
	"kexclusion/internal/wire"
)

// netConfig shapes one -net sweep: the cross product of connection
// counts, pipeline depths, and fsync policies, each cell driven
// against a fresh loopback server with a fresh data directory.
type netConfig struct {
	Conns      []int
	Depths     []int
	Fsyncs     []string
	OpsPerConn int
	Shards     int
	K          int
}

// netRow is one measured cell. The JSON field set is the BENCH_net
// schema — append fields if needed, never rename or remove.
type netRow struct {
	Fsync     string  `json:"fsync"`
	Conns     int     `json:"conns"`
	Depth     int     `json:"depth"`
	Ops       int     `json:"ops"`
	Errors    int     `json:"errors"`
	ElapsedMS float64 `json:"elapsed_ms"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// netSpeedup compares the deepest pipeline against depth 1 at the same
// fsync policy and connection count.
type netSpeedup struct {
	Fsync   string  `json:"fsync"`
	Conns   int     `json:"conns"`
	Depth   int     `json:"depth"`
	Speedup float64 `json:"speedup"`
}

type netReport struct {
	Schema     string       `json:"schema"`
	OpsPerConn int          `json:"ops_per_conn"`
	Shards     int          `json:"shards"`
	K          int          `json:"k"`
	Rows       []netRow     `json:"rows"`
	Speedups   []netSpeedup `json:"speedups"`
	// Verdict is "pipelined" when every measured (fsync, conns) pair
	// ran faster at its deepest depth than at depth 1, else "flat".
	Verdict string `json:"verdict"`
}

const netSchema = "kexbench/net/v1"

func shutdownCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 10*time.Second)
}

// parseIntList parses "1,4,16" into sorted unique positive ints.
func parseIntList(flag, s string) ([]int, error) {
	var out []int
	seen := map[int]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("-%s: want positive integers, got %q", flag, part)
		}
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-%s: empty list", flag)
	}
	sort.Ints(out)
	return out, nil
}

// runNet drives the sweep and emits the report (text or JSON).
func runNet(cfg netConfig, out io.Writer, asJSON bool) error {
	rep := netReport{Schema: netSchema, OpsPerConn: cfg.OpsPerConn, Shards: cfg.Shards, K: cfg.K}
	for _, fsync := range cfg.Fsyncs {
		policy, err := durable.ParseSyncPolicy(fsync)
		if err != nil {
			return err
		}
		for _, conns := range cfg.Conns {
			for _, depth := range cfg.Depths {
				row, err := netCell(cfg, policy, fsync, conns, depth)
				if err != nil {
					return fmt.Errorf("cell fsync=%s conns=%d depth=%d: %w", fsync, conns, depth, err)
				}
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	rep.Speedups, rep.Verdict = netVerdict(rep.Rows)

	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Fprintf(out, "network hot path sweep (%d ops/conn, %d shards, k=%d)\n", cfg.OpsPerConn, cfg.Shards, cfg.K)
	fmt.Fprintf(out, "%-10s %6s %6s %10s %8s %12s\n", "fsync", "conns", "depth", "ops", "errs", "ops/sec")
	for _, r := range rep.Rows {
		fmt.Fprintf(out, "%-10s %6d %6d %10d %8d %12.0f\n", r.Fsync, r.Conns, r.Depth, r.Ops, r.Errors, r.OpsPerSec)
	}
	for _, s := range rep.Speedups {
		fmt.Fprintf(out, "speedup: fsync=%s conns=%d depth %d vs 1: %.2fx\n", s.Fsync, s.Conns, s.Depth, s.Speedup)
	}
	fmt.Fprintf(out, "verdict: %s\n", rep.Verdict)
	return nil
}

// netCell measures one (fsync, conns, depth) cell against a fresh
// server on a loopback ephemeral port with a throwaway data directory.
func netCell(cfg netConfig, policy durable.SyncPolicy, fsync string, conns, depth int) (netRow, error) {
	dir, err := os.MkdirTemp("", "kexbench-net-")
	if err != nil {
		return netRow{}, err
	}
	defer os.RemoveAll(dir)

	n := conns + 2 // headroom so admission never sheds the drivers
	k := cfg.K
	if k > n {
		k = n
	}
	srv, err := server.New(server.Config{
		N: n, K: k, Shards: cfg.Shards,
		AdmitTimeout: 5 * time.Second,
		DataDir:      dir,
		Fsync:        policy,
		Logf:         func(string, ...any) {},
	})
	if err != nil {
		return netRow{}, err
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return netRow{}, err
	}
	go srv.Serve()
	defer func() {
		ctx, cancel := shutdownCtx()
		defer cancel()
		srv.Shutdown(ctx)
	}()

	clients := make([]*client.Client, conns)
	for i := range clients {
		c, err := client.DialTimeout(addr.String(), 5*time.Second)
		if err != nil {
			return netRow{}, err
		}
		defer c.Close()
		c.SetOpTimeout(30 * time.Second)
		clients[i] = c
	}

	var wg sync.WaitGroup
	errs := make([]int, conns)
	start := time.Now()
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			shard := uint32(i % cfg.Shards)
			pend := make([]*client.Pending, 0, depth)
			drain := func() {
				for _, p := range pend {
					if _, err := p.Wait(); err != nil {
						errs[i]++
					}
				}
				pend = pend[:0]
			}
			for op := 0; op < cfg.OpsPerConn; op++ {
				p, err := c.Go(wire.KindAdd, shard, 1, uint64(op+1))
				if err != nil {
					errs[i] += cfg.OpsPerConn - op
					break
				}
				pend = append(pend, p)
				if len(pend) >= depth {
					drain()
				}
			}
			drain()
		}(i, c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := conns * cfg.OpsPerConn
	nerr := 0
	for _, e := range errs {
		nerr += e
	}
	row := netRow{
		Fsync: fsync, Conns: conns, Depth: depth,
		Ops: total, Errors: nerr,
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
	}
	if elapsed > 0 {
		row.OpsPerSec = float64(total-nerr) / elapsed.Seconds()
	}
	return row, nil
}

// netVerdict derives the depth-vs-1 speedups and the overall verdict.
func netVerdict(rows []netRow) ([]netSpeedup, string) {
	type key struct {
		fsync string
		conns int
	}
	base := map[key]netRow{}
	deepest := map[key]netRow{}
	for _, r := range rows {
		k := key{r.Fsync, r.Conns}
		if r.Depth == 1 {
			base[k] = r
		}
		if r.Depth > deepest[k].Depth {
			deepest[k] = r
		}
	}
	var speedups []netSpeedup
	verdict := "pipelined"
	for k, d := range deepest {
		b, ok := base[k]
		if !ok || d.Depth == 1 || b.OpsPerSec <= 0 {
			continue
		}
		s := netSpeedup{Fsync: k.fsync, Conns: k.conns, Depth: d.Depth, Speedup: d.OpsPerSec / b.OpsPerSec}
		speedups = append(speedups, s)
		if s.Speedup <= 1 {
			verdict = "flat"
		}
	}
	sort.Slice(speedups, func(i, j int) bool {
		if speedups[i].Fsync != speedups[j].Fsync {
			return speedups[i].Fsync < speedups[j].Fsync
		}
		return speedups[i].Conns < speedups[j].Conns
	})
	if len(speedups) == 0 {
		verdict = "flat"
	}
	return speedups, verdict
}
