package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"time"

	"kexclusion/internal/durable"
	"kexclusion/internal/object"
	"kexclusion/internal/server"
	"kexclusion/internal/server/client"
	"kexclusion/internal/wire"
)

// The -objects sweep is a YCSB-style workload matrix over the kx05
// typed-object store: the classic A/B/C read/update mixes plus an X
// mix of cross-shard atomic transfers, each crossed with a key
// distribution — uniform, zipfian (the YCSB default skew), and
// hot-shard (every key lives on one shard, the worst placement). Reads
// are map gets (the fast path), updates are map puts; X is pairs of
// register adds issued as 0xC2 atomic groups. Each cell runs against a
// fresh loopback server and also reports the server's read_fastpath
// and batch_atomic counters, so the report shows not just throughput
// but which machinery served it.

// objMix is one YCSB-style operation mix.
type objMix struct {
	Name string
	// ReadFraction of non-atomic ops that are reads; ignored for
	// atomic mixes.
	ReadFraction float64
	// Atomic marks the transfer mix: every op is a two-shard atomic
	// group.
	Atomic bool
}

var objMixes = []objMix{
	{Name: "A", ReadFraction: 0.5},
	{Name: "B", ReadFraction: 0.95},
	{Name: "C", ReadFraction: 1.0},
	{Name: "X", Atomic: true},
}

// objConfig shapes one -objects sweep.
type objConfig struct {
	Mixes      []objMix
	Dists      []string // "uniform", "zipfian", "hotshard"
	Conns      int
	OpsPerConn int
	Keys       int
	Shards     int
	K          int
	Depth      int
	Seed       int64
}

// objRow is one measured cell. The JSON field set is the BENCH_objects
// schema (kexbench/objects/v1) — append fields if needed, never rename
// or remove.
type objRow struct {
	Mix          string  `json:"mix"`
	Dist         string  `json:"dist"`
	Conns        int     `json:"conns"`
	Ops          int     `json:"ops"`
	Errors       int     `json:"errors"`
	ElapsedMS    float64 `json:"elapsed_ms"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	ReadFastpath int64   `json:"read_fastpath"`
	BatchAtomic  int64   `json:"batch_atomic"`
}

type objReport struct {
	Schema     string   `json:"schema"`
	Conns      int      `json:"conns"`
	OpsPerConn int      `json:"ops_per_conn"`
	Keys       int      `json:"keys"`
	Shards     int      `json:"shards"`
	K          int      `json:"k"`
	Rows       []objRow `json:"rows"`
	// Verdict is "objects" when every cell completed error-free, the
	// read-bearing cells took the fast path, and the atomic cells
	// committed groups; anything else is "degraded".
	Verdict string `json:"verdict"`
}

const objSchema = "kexbench/objects/v1"

// objKeyPicker returns a deterministic key-index generator for one
// driver. Zipfian uses the stdlib generator with the YCSB-ish skew
// s=1.1; hotshard collapses placement, not the key space, so it reuses
// the uniform picker.
func objKeyPicker(dist string, r *rand.Rand, keys int) (func() int, error) {
	switch dist {
	case "uniform", "hotshard":
		return func() int { return r.Intn(keys) }, nil
	case "zipfian":
		z := rand.NewZipf(r, 1.1, 1, uint64(keys-1))
		return func() int { return int(z.Uint64()) }, nil
	default:
		return nil, fmt.Errorf("-obj-dists: unknown distribution %q (want uniform, zipfian, hotshard)", dist)
	}
}

// objObjectFor maps a key index onto its owning object (and that
// object onto a shard): one map object per shard, keys striped across
// them — except hotshard, which pins everything onto object 0.
func objObjectFor(dist string, keyIdx, shards int) (name string, shard uint32) {
	s := keyIdx % shards
	if dist == "hotshard" {
		s = 0
	}
	return fmt.Sprintf("ycsb:%d", s), uint32(s)
}

// runObjects drives the matrix and emits the report (text or JSON).
func runObjects(cfg objConfig, out io.Writer, asJSON bool) error {
	rep := objReport{Schema: objSchema, Conns: cfg.Conns, OpsPerConn: cfg.OpsPerConn,
		Keys: cfg.Keys, Shards: cfg.Shards, K: cfg.K}
	for _, dist := range cfg.Dists {
		if _, err := objKeyPicker(dist, rand.New(rand.NewSource(1)), cfg.Keys); err != nil {
			return err
		}
		for _, mix := range cfg.Mixes {
			row, err := objCell(cfg, mix, dist)
			if err != nil {
				return fmt.Errorf("cell mix=%s dist=%s: %w", mix.Name, dist, err)
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	rep.Verdict = objVerdict(rep.Rows)

	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Fprintf(out, "typed-object workload matrix (%d conns, %d ops/conn, %d keys, %d shards, k=%d)\n",
		cfg.Conns, cfg.OpsPerConn, cfg.Keys, cfg.Shards, cfg.K)
	fmt.Fprintf(out, "%-4s %-10s %8s %6s %12s %14s %13s\n", "mix", "dist", "ops", "errs", "ops/sec", "read_fastpath", "batch_atomic")
	for _, r := range rep.Rows {
		fmt.Fprintf(out, "%-4s %-10s %8d %6d %12.0f %14d %13d\n",
			r.Mix, r.Dist, r.Ops, r.Errors, r.OpsPerSec, r.ReadFastpath, r.BatchAtomic)
	}
	fmt.Fprintf(out, "verdict: %s\n", rep.Verdict)
	return nil
}

// objCell measures one (mix, dist) cell against a fresh server.
func objCell(cfg objConfig, mix objMix, dist string) (objRow, error) {
	dir, err := os.MkdirTemp("", "kexbench-obj-")
	if err != nil {
		return objRow{}, err
	}
	defer os.RemoveAll(dir)

	n := cfg.Conns + 2
	k := cfg.K
	if k > n {
		k = n
	}
	srv, err := server.New(server.Config{
		N: n, K: k, Shards: cfg.Shards,
		AdmitTimeout: 5 * time.Second,
		DataDir:      dir,
		Fsync:        durable.SyncInterval,
		Logf:         func(string, ...any) {},
	})
	if err != nil {
		return objRow{}, err
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return objRow{}, err
	}
	go srv.Serve()
	defer func() {
		ctx, cancel := shutdownCtx()
		defer cancel()
		srv.Shutdown(ctx)
	}()

	clients := make([]*client.Client, cfg.Conns)
	for i := range clients {
		c, err := client.DialTimeout(addr.String(), 5*time.Second)
		if err != nil {
			return objRow{}, err
		}
		defer c.Close()
		c.SetOpTimeout(30 * time.Second)
		clients[i] = c
	}

	// Seed the objects: one map per shard for A/B/C, a pool of account
	// registers for the transfer mix. Accounts are placed by ShardFor
	// (the convention Atomic uses to fill in a zero Shard), so the group
	// members route to wherever their register actually lives; hotshard
	// keeps only names that hash onto shard 0.
	setup := clients[0]
	var accts []string
	if mix.Atomic {
		if dist == "hotshard" {
			for n := 0; len(accts) < 2; n++ {
				name := fmt.Sprintf("acct:%d", n)
				if setup.ShardFor(name) == 0 {
					accts = append(accts, name)
				}
			}
		} else {
			for n := 0; n < 2*cfg.Shards; n++ {
				accts = append(accts, fmt.Sprintf("acct:%d", n))
			}
		}
		for _, name := range accts {
			if res, err := setup.Create(name, object.TypeRegister, 0); err != nil || !res.Found {
				return objRow{}, fmt.Errorf("create %s: %+v %v", name, res, err)
			}
		}
	} else {
		for s := 0; s < cfg.Shards; s++ {
			name := fmt.Sprintf("ycsb:%d", s)
			if res, err := setup.CreateOn(uint32(s), name, object.TypeMap, 0, setup.NextSeq()); err != nil || !res.Found {
				return objRow{}, fmt.Errorf("create %s: %+v %v", name, res, err)
			}
		}
		// Load phase: every key written once so C-mix reads hit.
		for key := 0; key < cfg.Keys; key++ {
			name, shard := objObjectFor(dist, key, cfg.Shards)
			if _, err := setup.MapPutOp(shard, name, fmt.Sprintf("k%05d", key), int64(key), setup.NextSeq()); err != nil {
				return objRow{}, fmt.Errorf("load key %d: %w", key, err)
			}
		}
	}

	var wg sync.WaitGroup
	errs := make([]int, cfg.Conns)
	start := time.Now()
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
			pick, _ := objKeyPicker(dist, r, cfg.Keys)
			if mix.Atomic {
				for op := 0; op < cfg.OpsPerConn; op++ {
					from := pick() % len(accts)
					to := (from + 1) % len(accts)
					group := c.AtomicSeqs([]client.AtomicOp{
						{Kind: wire.KindRegAdd, Obj: accts[from], Arg: -1},
						{Kind: wire.KindRegAdd, Obj: accts[to], Arg: 1},
					})
					if _, err := c.Atomic(group); err != nil {
						errs[i]++
					}
				}
				return
			}
			pend := make([]*client.Pending, 0, cfg.Depth)
			drain := func() {
				for _, p := range pend {
					if _, err := p.Wait(); err != nil {
						errs[i]++
					}
				}
				pend = pend[:0]
			}
			for op := 0; op < cfg.OpsPerConn; op++ {
				key := pick()
				name, shard := objObjectFor(dist, key, cfg.Shards)
				kstr := fmt.Sprintf("k%05d", key)
				var p *client.Pending
				var err error
				if r.Float64() < mix.ReadFraction {
					p, err = c.GoObj(wire.KindMapGet, name, kstr, shard, 0, 0, 0)
				} else {
					p, err = c.GoObj(wire.KindMapPut, name, kstr, shard, int64(op), 0, c.NextSeq())
				}
				if err != nil {
					errs[i] += cfg.OpsPerConn - op
					break
				}
				pend = append(pend, p)
				if len(pend) >= cfg.Depth {
					drain()
				}
			}
			drain()
		}(i, c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := srv.Stats()
	total := cfg.Conns * cfg.OpsPerConn
	nerr := 0
	for _, e := range errs {
		nerr += e
	}
	row := objRow{
		Mix: mix.Name, Dist: dist, Conns: cfg.Conns,
		Ops: total, Errors: nerr,
		ElapsedMS:    float64(elapsed.Microseconds()) / 1000,
		ReadFastpath: st.ReadFastpath,
		BatchAtomic:  st.BatchAtomic,
	}
	if elapsed > 0 {
		row.OpsPerSec = float64(total-nerr) / elapsed.Seconds()
	}
	return row, nil
}

// objVerdict: error-free, reads actually took the fast path, atomics
// actually committed groups.
func objVerdict(rows []objRow) string {
	for _, r := range rows {
		if r.Errors > 0 {
			return "degraded"
		}
		switch {
		case r.Mix == "X" && r.BatchAtomic < int64(r.Ops):
			return "degraded"
		case r.Mix != "X" && r.Mix != "A" && r.ReadFastpath == 0:
			return "degraded"
		}
	}
	if len(rows) == 0 {
		return "degraded"
	}
	return "objects"
}
