package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{nil, "needs -served-bin"},
		{[]string{"-served-bin", "x", "-clients", "0"}, "need clients >= 1"},
		{[]string{"-served-bin", "x", "-restarts", "0"}, "need restarts >= 1"},
		{[]string{"-served-bin", "x", "-duration", "0s"}, "need duration > 0"},
		{[]string{"-served-bin", "x", "-shards", "0"}, "need shards >= 1"},
	}
	for _, tc := range cases {
		var b strings.Builder
		err := run(tc.args, &b)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v): got %v, want error containing %q", tc.args, err, tc.want)
		}
	}
}

// buildServed compiles the real kexserved binary the soak will SIGKILL.
func buildServed(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "kexserved")
	cmd := exec.Command("go", "build", "-o", bin, "kexclusion/cmd/kexserved")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building kexserved: %v\n%s", err, out)
	}
	return bin
}

// TestSoakMiniRun drives a real (but compressed) soak: a kexserved
// subprocess, two rolling SIGKILL restarts, and the full verdict
// pipeline. The CI workflow runs the longer -short shape; this test
// keeps the harness itself honest under `go test`.
func TestSoakMiniRun(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and repeatedly SIGKILLs subprocesses; skipped in -short")
	}
	bin := buildServed(t)
	var b strings.Builder
	err := run([]string{"-served-bin", bin, "-duration", "6s", "-restarts", "2",
		"-clients", "2", "-seed", "7"}, &b)
	out := b.String()
	if err != nil {
		t.Fatalf("soak failed: %v\n%s", err, out)
	}
	for _, want := range []string{
		"restart 1/2: ready",
		"restart 2/2: ready",
		"restart_count=2",
		"verdict: soaked",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "SOAK VIOLATION") {
		t.Errorf("soak reported violations:\n%s", out)
	}
}

// TestShortFlagShape pins the CI smoke contract: -short must shrink the
// defaults to roughly a minute with two restarts, while explicit flags
// still win over it.
func TestShortFlagShape(t *testing.T) {
	// Indirect check via validation: -short with an explicit bad flag
	// still fails on the explicit value, proving Visit-based override.
	var b strings.Builder
	err := run([]string{"-served-bin", "x", "-short", "-restarts", "0"}, &b)
	if err == nil || !strings.Contains(err.Error(), "need restarts >= 1") {
		t.Fatalf("explicit -restarts 0 under -short: got %v, want validation error", err)
	}
}
