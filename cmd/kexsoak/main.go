// Command kexsoak is the rolling-restart soak harness: the production
// claim of this repo — (k-1)-resilient objects behind an exactly-once
// durable server — exercised the way an operator would actually hit it.
//
// The harness spawns a real kexserved with a WAL and an ops listener,
// parks a netfault proxy in front of it so the dial address survives
// the server's death, and drives a mixed workload (idempotent reads and
// pings, op-ID-carrying adds) through Reconnecting clients while it
// SIGKILLs and restarts the server over and over — a rolling restart
// performed with crash faults instead of graceful drains.
//
// The soak FAILS if any of the following is observed:
//
//   - An acknowledged add is lost or applied twice (per-shard counters
//     must equal the acknowledged-add tallies exactly), or any client
//     reads a counter going backwards (a linearizable counter only
//     grows; regression means recovery dropped acknowledged state).
//   - A client exhausts its retry budget (availability loss: the whole
//     point of the retry/dedup machinery is riding out a restart).
//   - /readyz lies about the phase: answering ready with a non-serving
//     phase in the body, or disagreeing with /metrics.
//   - The server process leaks goroutines or file descriptors across
//     the soak (self-reported via its own /metrics gauges).
//
// Usage:
//
//	kexsoak -served-bin ./kexserved                 soak with defaults (~3 min)
//	kexsoak -served-bin ./kexserved -short          CI smoke: ~45s, 2 restarts
//	kexsoak -served-bin ./kexserved -restarts 8 -duration 10m -clients 8
//
// On success the last line is "verdict: soaked ..." — CI greps for it.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"kexclusion/internal/netfault"
	"kexclusion/internal/server/client"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kexsoak:", err)
		os.Exit(1)
	}
}

type soakConfig struct {
	servedBin string
	impl      string
	n, k      int
	shards    int
	clients   int
	restarts  int
	duration  time.Duration
	seed      int64
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kexsoak", flag.ContinueOnError)
	var (
		servedBin = fs.String("served-bin", "", "path to the kexserved binary to soak (required)")
		implName  = fs.String("impl", "fastpath", "k-exclusion implementation for the server")
		n         = fs.Int("n", 8, "server identities")
		k         = fs.Int("k", 2, "server resiliency level")
		shards    = fs.Int("shards", 4, "server shards")
		clients   = fs.Int("clients", 4, "concurrent reconnecting clients")
		restarts  = fs.Int("restarts", 4, "rolling SIGKILL+restart cycles")
		duration  = fs.Duration("duration", 3*time.Minute, "total soak length (restarts are spread across it)")
		seed      = fs.Int64("seed", 1, "seed for workload mix and client identities")
		short     = fs.Bool("short", false, "CI smoke shape: ~45s with 2 restarts (explicit -duration/-restarts/-clients still win)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *short {
		// Shrink only what the caller left at its default.
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["duration"] {
			*duration = 45 * time.Second
		}
		if !set["restarts"] {
			*restarts = 2
		}
		if !set["clients"] {
			*clients = 3
		}
	}
	if *servedBin == "" {
		return fmt.Errorf("soaking needs -served-bin (the real binary gets SIGKILLed; an in-process server cannot stand in)")
	}
	if *clients < 1 {
		return fmt.Errorf("need clients >= 1, got %d", *clients)
	}
	if *restarts < 1 {
		return fmt.Errorf("need restarts >= 1, got %d", *restarts)
	}
	if *duration <= 0 {
		return fmt.Errorf("need duration > 0, got %v", *duration)
	}
	if *shards < 1 {
		return fmt.Errorf("need shards >= 1, got %d", *shards)
	}
	return soak(out, soakConfig{
		servedBin: *servedBin, impl: *implName, n: *n, k: *k, shards: *shards,
		clients: *clients, restarts: *restarts, duration: *duration, seed: *seed,
	})
}

// incarnation is one spawned kexserved process with its ops listener.
type incarnation struct {
	cmd     *exec.Cmd
	addr    string // object-protocol address
	opsAddr string // /healthz, /readyz, /metrics
	stderr  *bytes.Buffer
	exited  chan struct{}
	exitErr error
}

// startIncarnation spawns kexserved on the given addresses (port 0 on
// the first boot; the concrete ports thereafter, so the proxy and the
// probes survive restarts) and waits for both listen announcements.
func startIncarnation(cfg soakConfig, addr, opsAddr, dataDir string) (*incarnation, error) {
	cmd := exec.Command(cfg.servedBin,
		"-addr", addr, "-ops-addr", opsAddr,
		"-n", fmt.Sprint(cfg.n), "-k", fmt.Sprint(cfg.k),
		"-shards", fmt.Sprint(cfg.shards), "-impl", cfg.impl, "-quiet",
		"-data-dir", dataDir, "-fsync", "interval",
		"-admit-timeout", "500ms", "-idle-timeout", "30s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	inc := &incarnation{cmd: cmd, stderr: &bytes.Buffer{}, exited: make(chan struct{})}
	cmd.Stderr = inc.stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	go func() { inc.exitErr = cmd.Wait(); close(inc.exited) }()

	type bound struct{ addr, ops string }
	boundCh := make(chan bound, 1)
	go func() {
		var b bound
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "kexserved: ops listening on "); ok {
				b.ops = strings.Fields(rest)[0]
			}
			if rest, ok := strings.CutPrefix(line, "kexserved: listening on "); ok {
				b.addr = strings.Fields(rest)[0]
			}
			if b.addr != "" && b.ops != "" {
				select {
				case boundCh <- b:
				default:
				}
				b = bound{} // announce once; keep draining the pipe
			}
		}
	}()
	select {
	case b := <-boundCh:
		inc.addr, inc.opsAddr = b.addr, b.ops
		return inc, nil
	case <-inc.exited:
		return nil, fmt.Errorf("kexserved exited before binding: %v\n%s", inc.exitErr, inc.stderr.String())
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		return nil, fmt.Errorf("kexserved never announced both addresses")
	}
}

// kill SIGKILLs the incarnation — a whole-process crash fault — and
// reaps it. Safe to call more than once.
func (inc *incarnation) kill() {
	inc.cmd.Process.Signal(syscall.SIGKILL)
	<-inc.exited
}

// httpGet fetches an ops endpoint with a short timeout.
func httpGet(opsAddr, path string) (int, string, error) {
	c := http.Client{Timeout: 2 * time.Second}
	resp, err := c.Get("http://" + opsAddr + path)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", err
	}
	return resp.StatusCode, string(b), nil
}

// servingPhases is what a 200 /readyz body may name. Anything else in a
// ready answer means the probe is lying about the phase.
var servingPhases = map[string]bool{"running": true, "degraded": true}

// awaitReady polls /readyz until it answers ready, checking every
// answer for honesty: a 200 must name a serving phase. Returns how many
// honest not-ready answers were observed on the way (the recovery
// window made visible) and any lie found.
func awaitReady(opsAddr string, deadline time.Duration) (notReadySeen int, lie string, err error) {
	until := time.Now().Add(deadline)
	for {
		code, body, gerr := httpGet(opsAddr, "/readyz")
		phase := strings.TrimSpace(body)
		switch {
		case gerr != nil:
			// Listener not up yet (or process between incarnations):
			// honest in the crudest way.
		case code == http.StatusOK:
			if !servingPhases[phase] {
				return notReadySeen, fmt.Sprintf("/readyz answered 200 while naming phase %q", phase), nil
			}
			return notReadySeen, "", nil
		case servingPhases[phase]:
			return notReadySeen, fmt.Sprintf("/readyz answered %d while naming serving phase %q", code, phase), nil
		default:
			notReadySeen++
		}
		if time.Now().After(until) {
			return notReadySeen, "", fmt.Errorf("server not ready after %v (last: %d %q %v)", deadline, code, phase, gerr)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// crossCheckReady compares /readyz against /metrics: the kexserved_ready
// gauge and the phase one-hot must tell the same story the probe does.
func crossCheckReady(opsAddr string) string {
	code, _, err := httpGet(opsAddr, "/readyz")
	if err != nil {
		return ""
	}
	_, metrics, err := httpGet(opsAddr, "/metrics")
	if err != nil {
		return ""
	}
	readyGauge := strings.Contains(metrics, "kexserved_ready 1\n")
	probeReady := code == http.StatusOK
	// The phase can legitimately flip between the two fetches (e.g.
	// running → draining), but this harness only calls the check in
	// steady state, where a disagreement is a rendering bug.
	if probeReady != readyGauge {
		return fmt.Sprintf("/readyz says %d but /metrics says kexserved_ready=%v", code, readyGauge)
	}
	return ""
}

// procGauges scrapes the server's self-reported goroutine and fd counts.
func procGauges(opsAddr string) (goroutines, fds int64, err error) {
	_, metrics, err := httpGet(opsAddr, "/metrics")
	if err != nil {
		return 0, 0, err
	}
	get := func(name string) (int64, error) {
		for _, line := range strings.Split(metrics, "\n") {
			if rest, ok := strings.CutPrefix(line, name+" "); ok {
				return strconv.ParseInt(rest, 10, 64)
			}
		}
		return 0, fmt.Errorf("metric %s not found", name)
	}
	if goroutines, err = get("kexserved_goroutines"); err != nil {
		return 0, 0, err
	}
	if fds, err = get("kexserved_open_fds"); err != nil {
		return 0, 0, err
	}
	return goroutines, fds, nil
}

func soak(out io.Writer, cfg soakConfig) error {
	dir, err := os.MkdirTemp("", "kexsoak-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	inc, err := startIncarnation(cfg, "127.0.0.1:0", "127.0.0.1:0", dir)
	if err != nil {
		return err
	}
	defer inc.kill()
	fmt.Fprintf(out, "kexsoak: serving on %s, ops on %s (impl=%s n=%d k=%d shards=%d)\n",
		inc.addr, inc.opsAddr, cfg.impl, cfg.n, cfg.k, cfg.shards)
	fmt.Fprintf(out, "kexsoak: %d clients, %d rolling restarts across %v\n",
		cfg.clients, cfg.restarts, cfg.duration)

	violations := 0
	complain := func(format string, args ...any) {
		violations++
		fmt.Fprintf(out, "SOAK VIOLATION: "+format+"\n", args...)
	}

	if _, lie, err := awaitReady(inc.opsAddr, 15*time.Second); err != nil {
		return err
	} else if lie != "" {
		complain("%s", lie)
	}
	if lie := crossCheckReady(inc.opsAddr); lie != "" {
		complain("%s", lie)
	}
	baseGoroutines, baseFDs, err := procGauges(inc.opsAddr)
	if err != nil {
		return fmt.Errorf("scraping baseline process gauges: %w", err)
	}

	// The proxy pins the dial address across every restart.
	px, err := netfault.New(inc.addr, netfault.Plan{Seed: cfg.seed})
	if err != nil {
		return err
	}
	defer px.Close()

	// Workload: every client tracks its acknowledged adds per shard and
	// checks that the counters it reads never regress.
	acked := make([]atomic.Int64, cfg.shards)
	var stop atomic.Bool
	errs := make([]error, cfg.clients)
	conns := make([]*client.Reconnecting, cfg.clients)
	var wg sync.WaitGroup
	for i := 0; i < cfg.clients; i++ {
		c, err := client.DialReconnecting(px.Addr(), client.RetryPolicy{
			Seed:        cfg.seed + int64(i) + 1,
			Session:     uint64(cfg.seed+int64(i))<<1 | 1,
			MaxAttempts: 30,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    500 * time.Millisecond,
		}, 5*time.Second)
		if err != nil {
			return fmt.Errorf("client %d admission: %w", i, err)
		}
		defer c.Close()
		conns[i] = c
		wg.Add(1)
		go func(i int, c *client.Reconnecting) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(i)*7919))
			lastSeen := make([]int64, cfg.shards)
			for op := 0; !stop.Load(); op++ {
				shard := rng.Intn(cfg.shards)
				switch op % 5 {
				case 3: // idempotent control traffic
					if err := c.Ping(); err != nil {
						errs[i] = fmt.Errorf("op %d ping: %w", op, err)
						return
					}
				case 4: // idempotent read, with a regression check
					v, err := c.Get(uint32(shard))
					if err != nil {
						errs[i] = fmt.Errorf("op %d get: %w", op, err)
						return
					}
					if v < lastSeen[shard] {
						errs[i] = fmt.Errorf("op %d: shard %d regressed %d -> %d (acknowledged state lost)",
							op, shard, lastSeen[shard], v)
						return
					}
					lastSeen[shard] = v
				default: // non-idempotent add under an op ID
					if _, err := c.AddOp(uint32(shard), 1); err != nil {
						errs[i] = fmt.Errorf("op %d add: %w", op, err)
						return
					}
					acked[shard].Add(1)
				}
				time.Sleep(200 * time.Microsecond)
			}
		}(i, c)
	}

	// Rolling restarts, spread across the soak: kill, restart on the
	// same ports, require an honest not-ready window and a truthful
	// ready answer, and sample the fresh incarnation's process gauges.
	interval := cfg.duration / time.Duration(cfg.restarts+1)
	lastGoroutines, lastFDs := baseGoroutines, baseFDs
	for r := 1; r <= cfg.restarts; r++ {
		time.Sleep(interval)
		killedAt := time.Now()
		inc.kill()
		// The recovery window must be visibly not-ready. With the process
		// dead this probe can only fail to connect or answer non-ready —
		// a ready answer here means the probe is reading something stale
		// and every later honesty check is worthless.
		if code, body, err := httpGet(inc.opsAddr, "/readyz"); err == nil && code == http.StatusOK {
			complain("restart %d: /readyz answered 200 %q with the server process dead", r, strings.TrimSpace(body))
		}
		next, err := startIncarnation(cfg, inc.addr, inc.opsAddr, dir)
		if err != nil {
			return fmt.Errorf("restart %d: %w", r, err)
		}
		inc = next
		notReady, lie, err := awaitReady(inc.opsAddr, 15*time.Second)
		if err != nil {
			return fmt.Errorf("restart %d: %w", r, err)
		}
		if lie != "" {
			complain("restart %d: %s", r, lie)
		}
		if lie := crossCheckReady(inc.opsAddr); lie != "" {
			complain("restart %d: %s", r, lie)
		}
		g, f, err := procGauges(inc.opsAddr)
		if err != nil {
			return fmt.Errorf("restart %d gauges: %w", r, err)
		}
		fmt.Fprintf(out, "kexsoak: restart %d/%d: ready %v after SIGKILL (%d honest not-ready answers), goroutines=%d fds=%d\n",
			r, cfg.restarts, time.Since(killedAt).Round(time.Millisecond), notReady, g, f)
		// Fresh incarnations of the same server must not cost more and
		// more descriptors (e.g. WAL segments left open, growing with
		// each recovery).
		if f > baseFDs+16 {
			complain("restart %d: open fds grew from %d at baseline to %d", r, baseFDs, f)
		}
		if g > baseGoroutines+int64(cfg.n)+16 {
			complain("restart %d: goroutines grew from %d at baseline to %d", r, baseGoroutines, g)
		}
		lastGoroutines, lastFDs = g, f
	}
	time.Sleep(interval)

	// Stop the load and take the verdict.
	stop.Store(true)
	wg.Wait()
	clientFailures := 0
	for i, e := range errs {
		if e != nil {
			clientFailures++
			complain("client %d: %v", i, e)
		}
	}

	var totalAcked, counterSum, dupeAcks, reconnects int64
	verifier := conns[0]
	for shard := 0; shard < cfg.shards; shard++ {
		want := acked[shard].Load()
		got, err := verifier.Get(uint32(shard))
		if err != nil {
			return fmt.Errorf("verdict read of shard %d: %w", shard, err)
		}
		if got != want {
			complain("shard %d: counter=%d, want exactly %d acknowledged adds (lost or doubled)", shard, got, want)
		}
		totalAcked += want
		counterSum += got
	}
	st, err := verifier.Stats()
	if err != nil {
		return fmt.Errorf("verdict stats: %w", err)
	}
	for _, c := range conns {
		dupeAcks += c.DupeAcks()
		reconnects += c.Reconnects()
	}
	if st.RestartCount < int64(cfg.restarts) {
		complain("restart_count=%d, want >= %d", st.RestartCount, cfg.restarts)
	}
	if st.Phase != "running" && st.Phase != "degraded" {
		complain("final phase %q is not a serving phase", st.Phase)
	}

	// Goroutine/fd drain check: with every client closed, the final
	// incarnation must fall back toward its fresh-boot footprint.
	for _, c := range conns {
		c.Close()
	}
	time.Sleep(time.Second)
	finalGoroutines, finalFDs, err := procGauges(inc.opsAddr)
	if err != nil {
		return fmt.Errorf("final gauges: %w", err)
	}
	if finalGoroutines > lastGoroutines+8 {
		complain("goroutines grew during the soak tail: %d -> %d with all clients closed", lastGoroutines, finalGoroutines)
	}
	if finalFDs > lastFDs+8 {
		complain("open fds grew during the soak tail: %d -> %d with all clients closed", lastFDs, finalFDs)
	}

	// Drain the survivor so its WAL close is orderly.
	inc.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-inc.exited:
	case <-time.After(10 * time.Second):
		inc.kill()
	}

	fmt.Fprintf(out, "kexsoak: ops acked=%d counter=%d dupe_acks=%d reconnects=%d recovered_ops=%d restart_count=%d\n",
		totalAcked, counterSum, dupeAcks, reconnects, st.RecoveredOps, st.RestartCount)
	fmt.Fprintf(out, "kexsoak: process goroutines %d -> %d, fds %d -> %d\n",
		baseGoroutines, finalGoroutines, baseFDs, finalFDs)
	if violations > 0 {
		return fmt.Errorf("%d soak violation(s)", violations)
	}
	fmt.Fprintf(out, "verdict: soaked (%d acknowledged ops survived %d rolling SIGKILL restarts; none lost, none doubled)\n",
		totalAcked, cfg.restarts)
	return nil
}
