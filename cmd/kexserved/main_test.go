package main

import (
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"kexclusion/internal/server/client"
)

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-k", "0"}, "need k >= 1"},
		{[]string{"-n", "2", "-k", "4"}, "need n >= k"},
		{[]string{"-shards", "0"}, "need shards >= 1"},
		{[]string{"-impl", "nonesuch"}, "unknown implementation"},
		{[]string{"-impl", "mcs", "-k", "1"}, "not (k-1)-resilient"},
		{[]string{"-idle-timeout", "-1s"}, "need idle-timeout >= 0"},
		{[]string{"-op-timeout", "-1ms"}, "need op-timeout >= 0"},
		{[]string{"-idle-timeout", "1s", "-op-timeout", "2s"}, "exceeds idle-timeout"},
		{[]string{"-data-dir", "x", "-fsync", "sometimes"}, "sync policy"},
		{[]string{"-fsync", "interval"}, "need -data-dir"},
		{[]string{"-snapshot-every", "16"}, "need -data-dir"},
		{[]string{"-data-dir", "x", "-fsync-interval", "0s"}, "need fsync-interval > 0"},
	}
	for _, tc := range cases {
		var b strings.Builder
		err := run(tc.args, &b)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v): got %v, want error containing %q", tc.args, err, tc.want)
		}
	}
}

func TestList(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"fastpath", "localspin", "inductive"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "mcs") {
		t.Errorf("-list offers the non-resilient mcs comparator:\n%s", out)
	}
}

// syncBuffer lets the test poll run's output while run is still writing.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServeSIGTERMDrain runs the real lifecycle: serve on an ephemeral
// port, complete one client operation, then drain via SIGTERM.
func TestServeSIGTERMDrain(t *testing.T) {
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-n", "4", "-k", "2",
			"-shards", "2", "-quiet", "-json", "-drain-timeout", "5s",
			"-idle-timeout", "30s", "-op-timeout", "5s"}, &out)
	}()

	// The bound address appears on the "listening on" line.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address:\n%s", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if strings.Contains(line, "listening on ") {
				addr = strings.Fields(strings.SplitAfter(line, "listening on ")[1])[0]
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := c.Add(1, 9); err != nil || v != 9 {
		t.Fatalf("Add = %d, %v", v, err)
	}
	c.Close()

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run after SIGTERM: %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("drain never completed:\n%s", out.String())
	}
	got := out.String()
	if !strings.Contains(got, "drained cleanly") {
		t.Errorf("missing drain confirmation:\n%s", got)
	}
	// -json printed a final stats snapshot recording the session.
	if !strings.Contains(got, `"admitted":1`) {
		t.Errorf("missing stats dump:\n%s", got)
	}
	// The watchdog counters ride in the same snapshot (nothing idled
	// out or timed out in this clean run, but the fields must exist).
	for _, field := range []string{`"idle_reclaims":0`, `"op_deadlines":0`} {
		if !strings.Contains(got, field) {
			t.Errorf("stats dump missing %s:\n%s", field, got)
		}
	}
}
