package main

import (
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"kexclusion/internal/server/client"
)

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-k", "0"}, "need k >= 1"},
		{[]string{"-n", "2", "-k", "4"}, "need n >= k"},
		{[]string{"-shards", "0"}, "need shards >= 1"},
		{[]string{"-impl", "nonesuch"}, "unknown implementation"},
		{[]string{"-impl", "mcs", "-k", "1"}, "not (k-1)-resilient"},
		{[]string{"-idle-timeout", "-1s"}, "need idle-timeout >= 0"},
		{[]string{"-op-timeout", "-1ms"}, "need op-timeout >= 0"},
		{[]string{"-idle-timeout", "1s", "-op-timeout", "2s"}, "exceeds idle-timeout"},
		{[]string{"-data-dir", "x", "-fsync", "sometimes"}, "sync policy"},
		{[]string{"-fsync", "interval"}, "need -data-dir"},
		{[]string{"-snapshot-every", "16"}, "need -data-dir"},
		{[]string{"-data-dir", "x", "-fsync-interval", "0s"}, "need fsync-interval > 0"},
		{[]string{"-shed-high", "4", "-shed-low", "9", "-admit-timeout", "1s"}, "below the high watermark"},
		{[]string{"-shed-high", "4"}, "AdmitTimeout"},
		{[]string{"-max-inflight", "-1"}, "non-negative"},
		{[]string{"-node-id", "a"}, "both -node-id and -peers"},
		{[]string{"-peers", "a=h:1/h:2"}, "both -node-id and -peers"},
		{[]string{"-node-id", "a", "-peers", "a=h:1/h:2"}, "needs -data-dir"},
		{[]string{"-node-id", "a", "-peers", "bogus", "-data-dir", "x"}, "id=client-addr/repl-addr"},
		{[]string{"-node-id", "a", "-peers", "a=h:1", "-data-dir", "x"}, "id=client-addr/repl-addr"},
		{[]string{"-node-id", "a", "-peers", "a=h:1/h:2", "-data-dir", "x", "-quorum", "7"}, "out of range"},
		{[]string{"-node-id", "a", "-peers", "a=h:1/h:2", "-data-dir", "x", "-quorum", "most"}, "majority, all, or an integer"},
		{[]string{"-node-id", "a", "-peers", "a=h:1/h:2", "-data-dir", "x", "-fail-after", "0s"}, "need fail-after > 0"},
	}
	for _, tc := range cases {
		var b strings.Builder
		err := run(tc.args, &b)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v): got %v, want error containing %q", tc.args, err, tc.want)
		}
	}
}

func TestList(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"fastpath", "localspin", "inductive"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "mcs") {
		t.Errorf("-list offers the non-resilient mcs comparator:\n%s", out)
	}
}

// syncBuffer lets the test poll run's output while run is still writing.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// awaitLine polls out until a line containing marker appears, returning
// the first whitespace-delimited token after it.
func awaitLine(t *testing.T, out *syncBuffer, marker string) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, line := range strings.Split(out.String(), "\n") {
			if strings.Contains(line, marker) {
				return strings.Fields(strings.SplitAfter(line, marker)[1])[0]
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw %q:\n%s", marker, out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestOpsEndpoints boots kexserved with -ops-addr and the shed flags,
// then exercises the operational surface over real HTTP: liveness,
// phase-aware readiness, and the Prometheus rendering of live stats.
func TestOpsEndpoints(t *testing.T) {
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-ops-addr", "127.0.0.1:0",
			"-n", "4", "-k", "2", "-shards", "2", "-quiet", "-drain-timeout", "5s",
			"-admit-timeout", "100ms", "-shed-high", "8", "-shed-low", "2",
			"-max-inflight", "64"}, &out)
	}()
	opsAddr := awaitLine(t, &out, "ops listening on ")
	addr := awaitLine(t, &out, ": listening on ")

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + opsAddr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code, body := get("/readyz"); code == 200 {
			if body != "running\n" {
				t.Fatalf("/readyz ready body = %q, want running", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never became ready")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Drive one op so the metrics show a live session's footprint.
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := c.Add(0, 3); err != nil || v != 3 {
		t.Fatalf("Add = %d, %v", v, err)
	}
	_, metrics := get("/metrics")
	c.Close()
	for _, want := range []string{
		"kexserved_n 4\n", "kexserved_k 2\n", "kexserved_shards 2\n",
		`kexserved_phase{phase="running"} 1`,
		"kexserved_ready 1\n",
		"kexserved_admitted_total 1\n",
		"kexserved_shed_admissions_total 0\n",
		`kexserved_shard_applied_ops_total{shard="0"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run after SIGTERM: %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("drain never completed:\n%s", out.String())
	}
}

// TestServeSIGTERMDrain runs the real lifecycle: serve on an ephemeral
// port, complete one client operation, then drain via SIGTERM.
func TestServeSIGTERMDrain(t *testing.T) {
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-n", "4", "-k", "2",
			"-shards", "2", "-quiet", "-json", "-drain-timeout", "5s",
			"-idle-timeout", "30s", "-op-timeout", "5s"}, &out)
	}()

	// The bound address appears on the "listening on" line.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address:\n%s", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if strings.Contains(line, "listening on ") {
				addr = strings.Fields(strings.SplitAfter(line, "listening on ")[1])[0]
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := c.Add(1, 9); err != nil || v != 9 {
		t.Fatalf("Add = %d, %v", v, err)
	}
	c.Close()

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run after SIGTERM: %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("drain never completed:\n%s", out.String())
	}
	got := out.String()
	if !strings.Contains(got, "drained cleanly") {
		t.Errorf("missing drain confirmation:\n%s", got)
	}
	// -json printed a final stats snapshot recording the session.
	if !strings.Contains(got, `"admitted":1`) {
		t.Errorf("missing stats dump:\n%s", got)
	}
	// The watchdog counters ride in the same snapshot (nothing idled
	// out or timed out in this clean run, but the fields must exist).
	for _, field := range []string{`"idle_reclaims":0`, `"op_deadlines":0`} {
		if !strings.Contains(got, field) {
			t.Errorf("stats dump missing %s:\n%s", field, got)
		}
	}
}

func TestParsePeersAndQuorum(t *testing.T) {
	peers, err := parsePeers("a=10.0.0.1:4750/10.0.0.1:4850, b=10.0.0.2:4750/10.0.0.2:4850")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0].ID != "a" || peers[1].ReplAddr != "10.0.0.2:4850" {
		t.Fatalf("parsed %+v", peers)
	}
	for spec, want := range map[string]int{"majority": 0, "": 0, "all": 2, "1": 1, "2": 2} {
		got, err := parseQuorum(spec, 2)
		if err != nil || got != want {
			t.Errorf("parseQuorum(%q, 2) = %d, %v; want %d", spec, got, err, want)
		}
	}
}
