// Command kexserved serves the paper's resilient shared objects over
// TCP, putting k-assignment at the admission edge: each accepted
// connection leases one of N process identities, every operation runs
// through the (N, k)-assignment wrapper of its shard (at most k sessions
// inside any shard's wait-free core), and a client that disconnects
// mid-operation is absorbed as one of the paper's crash faults — the
// server reclaims its identity and stays live for everyone else.
//
// Usage:
//
//	kexserved                                    serve on 127.0.0.1:4750
//	kexserved -addr :4750 -n 64 -k 8 -shards 16  choose the shape
//	kexserved -impl localspin                    pick the k-exclusion (see -list)
//	kexserved -admit-timeout 2s                  park connection N+1 before rejecting
//	kexserved -idle-timeout 30s                  reclaim identities from silent sessions
//	kexserved -op-timeout 5s                     bound each op's wait for a slot
//	kexserved -json                              dump final stats JSON on exit
//	kexserved -data-dir /var/lib/kex             durable: WAL + snapshots, recover on boot
//	kexserved -data-dir d -fsync interval        group-commit fsync (see -fsync-interval)
//	kexserved -data-dir d -snapshot-every 4096   snapshot cadence in applied ops
//	kexserved -ops-addr 127.0.0.1:9750           /healthz, /readyz, /metrics (Prometheus)
//	kexserved -shed-high 64 -shed-low 8          shed admissions past the queue watermark
//	kexserved -max-inflight 256                  ceiling on concurrently executing ops
//	kexserved -node-id a -peers a=HOST:4750/HOST:4850,b=...   join a replicated cluster
//	kexserved -quorum majority                   acks wait for this many nodes' fsyncs
//	kexserved -lease 500ms                       leader lease window (< -fail-after)
//
// With -peers (requires -data-dir and -node-id), the server is one
// member of a statically configured cluster: the consistent-hash ring
// over the peer list decides which shards it serves (ops for other
// shards answer not_primary with the owner's address), its WAL batches
// replicate to every peer, mutations are acknowledged only after
// -quorum members (itself included, "majority" by default, "all" or an
// integer accepted) have fsynced them, and when a peer stops answering
// its shards fail over to live ring successors. Each peer is
// id=client-addr/repl-addr; the repl address is a second listener for
// peer replication traffic. A primary serves its shards only while it
// holds a leader lease — quorum-many peers (itself included) heard
// from within -lease — so a partitioned primary stops admitting before
// its successor can promote (-lease must be shorter than -fail-after).
//
// With -ops-addr, the ops listener binds BEFORE recovery begins, so a
// rolling-restart orchestrator watching /readyz sees an honest
// not-ready ("recovering") for the whole replay window, then "running"
// only once the server actually serves.
//
// With -data-dir, mutations are acknowledged only after they are
// durable under the chosen -fsync policy, and a restart replays the
// newest snapshot plus the log tail — acknowledged writes survive even
// SIGKILL, and retried ops (clients attach session × seq op IDs)
// deduplicate instead of double-applying.
//
// SIGINT/SIGTERM drains gracefully: stop accepting, finish in-flight
// operations, then exit (bounded by -drain-timeout).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"kexclusion/internal/cluster"
	"kexclusion/internal/core"
	"kexclusion/internal/durable"
	"kexclusion/internal/server"
)

// parsePeers decodes the -peers membership list: comma-separated
// id=client-addr/repl-addr entries.
func parsePeers(spec string) ([]cluster.Peer, error) {
	var peers []cluster.Peer
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		id, addrs, ok := strings.Cut(item, "=")
		if !ok || id == "" {
			return nil, fmt.Errorf("-peers entry %q: want id=client-addr/repl-addr", item)
		}
		clientAddr, replAddr, ok := strings.Cut(addrs, "/")
		if !ok || clientAddr == "" || replAddr == "" {
			return nil, fmt.Errorf("-peers entry %q: want id=client-addr/repl-addr", item)
		}
		peers = append(peers, cluster.Peer{ID: id, ClientAddr: clientAddr, ReplAddr: replAddr})
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("-peers is empty")
	}
	return peers, nil
}

// parseQuorum maps the -quorum spelling to a node count (0 = majority,
// resolved by the server).
func parseQuorum(spec string, n int) (int, error) {
	switch spec {
	case "", "majority":
		return 0, nil
	case "all":
		return n, nil
	}
	v, err := strconv.Atoi(spec)
	if err != nil {
		return 0, fmt.Errorf("-quorum %q: want majority, all, or an integer", spec)
	}
	if v < 1 || v > n {
		return 0, fmt.Errorf("-quorum %d out of range [1, %d peers]", v, n)
	}
	return v, nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kexserved:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kexserved", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:4750", "TCP listen address (port 0 for ephemeral)")
		n            = fs.Int("n", 64, "process identities (max concurrent sessions)")
		k            = fs.Int("k", 8, "resiliency level: slots per shard, tolerating k-1 dead holders")
		shards       = fs.Int("shards", 8, "independent objects in the table")
		implName     = fs.String("impl", "fastpath", "k-exclusion implementation from the registry (see -list)")
		list         = fs.Bool("list", false, "list usable implementations and exit")
		admitTimeout = fs.Duration("admit-timeout", 0, "how long to park connection N+1 for a free identity before rejecting (0 = reject immediately); also the Retry-After hint sent with busy rejections")
		idleTimeout  = fs.Duration("idle-timeout", 0, "session watchdog: reclaim the identity of a connection silent this long (0 = never; a partitioned client then pins its identity)")
		opTimeout    = fs.Duration("op-timeout", 0, "per-operation deadline: an op still waiting for a slot withdraws and answers status timeout (0 = wait forever)")
		drainTimeout = fs.Duration("drain-timeout", 5*time.Second, "bound on graceful drain after SIGTERM/SIGINT")
		statsJSON    = fs.Bool("json", false, "print the final stats snapshot as JSON on exit")
		quiet        = fs.Bool("quiet", false, "suppress per-session log lines")

		opsAddr     = fs.String("ops-addr", "", "operational HTTP listen address for /healthz, /readyz and /metrics (empty = no ops listener)")
		shedHigh    = fs.Int("shed-high", 0, "admission-queue depth that flips the server degraded and sheds new connections (0 = disabled; requires -admit-timeout)")
		shedLow     = fs.Int("shed-low", 0, "admission-queue depth at which a degraded server recovers (must be < -shed-high)")
		maxInflight = fs.Int("max-inflight", 0, "ceiling on concurrently executing object operations; ops past it answer busy with a Retry-After hint (0 = unlimited)")

		nodeID     = fs.String("node-id", "", "this member's ID in -peers (cluster mode)")
		peersSpec  = fs.String("peers", "", "full cluster membership as id=client-addr/repl-addr,... (empty = standalone)")
		quorumSpec = fs.String("quorum", "majority", "ack quorum in cluster mode: majority, all, or an integer count of nodes (this one included)")
		failAfter  = fs.Duration("fail-after", 2*time.Second, "cluster failure detector: a peer silent this long is suspected dead and its shards fail over")
		lease      = fs.Duration("lease", 0, "leader lease: a primary admits ops only while a quorum of peers witnessed it this recently; must be < -fail-after (0 = fail-after/2)")

		dataDir       = fs.String("data-dir", "", "durability directory for the WAL and snapshots (empty = in-memory only)")
		fsync         = fs.String("fsync", "always", "WAL sync policy: always (fsync per op), interval (group commit), never (OS decides)")
		fsyncInterval = fs.Duration("fsync-interval", 50*time.Millisecond, "group-commit cadence when -fsync interval")
		snapshotEvery = fs.Int("snapshot-every", 1024, "write a snapshot every this many applied ops (0 = default, negative = never)")
		dedupWindow   = fs.Int("dedup-window", 1024, "retained op IDs per shard for exactly-once retries (0 = default, negative = unbounded)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, c := range core.Registry() {
			if c.Resilient && c.FixedK == 0 {
				fmt.Fprintf(out, "%-11s %s\n", c.Name, c.Doc)
			}
		}
		return nil
	}
	// Validate the flag shape here so a bad invocation gets a usage
	// error, not a panic from deep inside construction.
	if *k < 1 {
		return fmt.Errorf("need k >= 1, got k=%d", *k)
	}
	if *n < *k {
		return fmt.Errorf("need n >= k, got n=%d k=%d", *n, *k)
	}
	if *shards < 1 {
		return fmt.Errorf("need shards >= 1, got shards=%d", *shards)
	}
	if *idleTimeout < 0 {
		return fmt.Errorf("need idle-timeout >= 0, got %v", *idleTimeout)
	}
	if *opTimeout < 0 {
		return fmt.Errorf("need op-timeout >= 0, got %v", *opTimeout)
	}
	if *opTimeout > 0 && *idleTimeout > 0 && *opTimeout > *idleTimeout {
		return fmt.Errorf("op-timeout %v exceeds idle-timeout %v: a waiting op would outlive its own session watchdog", *opTimeout, *idleTimeout)
	}
	policy, err := durable.ParseSyncPolicy(*fsync)
	if err != nil {
		return err
	}
	// Durability knobs without a directory are a misconfiguration the
	// operator should hear about, not silently ignore. (-dedup-window is
	// exempt: the dedup window works in memory too.)
	if *dataDir == "" && (*fsync != "always" || *snapshotEvery != 1024) {
		return fmt.Errorf("-fsync and -snapshot-every need -data-dir")
	}
	if *fsyncInterval <= 0 {
		return fmt.Errorf("need fsync-interval > 0, got %v", *fsyncInterval)
	}

	shed := server.ShedPolicy{QueueHigh: *shedHigh, QueueLow: *shedLow, MaxInFlight: *maxInflight}
	if err := shed.Validate(*admitTimeout); err != nil {
		return err
	}

	var clusterCfg *server.ClusterConfig
	if *peersSpec != "" || *nodeID != "" {
		if *peersSpec == "" || *nodeID == "" {
			return fmt.Errorf("cluster mode needs both -node-id and -peers")
		}
		if *dataDir == "" {
			return fmt.Errorf("cluster mode needs -data-dir (the WAL is the replication stream)")
		}
		peers, err := parsePeers(*peersSpec)
		if err != nil {
			return err
		}
		quorum, err := parseQuorum(*quorumSpec, len(peers))
		if err != nil {
			return err
		}
		if *failAfter <= 0 {
			return fmt.Errorf("need fail-after > 0, got %v", *failAfter)
		}
		if *lease < 0 || *lease >= *failAfter {
			return fmt.Errorf("need 0 <= lease < fail-after (%v), got %v: a deposed primary's lease must expire before any successor can promote", *failAfter, *lease)
		}
		clusterCfg = &server.ClusterConfig{
			NodeID:    *nodeID,
			Peers:     peers,
			Quorum:    quorum,
			FailAfter: *failAfter,
			Lease:     *lease,
		}
	}

	cfg := server.Config{
		N: *n, K: *k, Shards: *shards,
		Impl:          *implName,
		AdmitTimeout:  *admitTimeout,
		IdleTimeout:   *idleTimeout,
		OpTimeout:     *opTimeout,
		DataDir:       *dataDir,
		Fsync:         policy,
		FsyncInterval: *fsyncInterval,
		SnapshotEvery: *snapshotEvery,
		DedupWindow:   *dedupWindow,
		Shed:          shed,
		Cluster:       clusterCfg,
		Lifecycle:     server.NewLifecycle(),
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(out, "kexserved: "+format+"\n", args...)
		}
	}

	// Bind the ops listener before server.New: recovery (snapshot + WAL
	// replay) happens inside New, and that window is exactly when a
	// readiness probe must be answerable with "recovering".
	var ops *server.Ops
	if *opsAddr != "" {
		ops = server.NewOps(cfg.Lifecycle)
		bound, err := ops.ListenAndServe(*opsAddr)
		if err != nil {
			return fmt.Errorf("binding ops listener: %w", err)
		}
		defer ops.Close()
		fmt.Fprintf(out, "kexserved: ops listening on %s\n", bound)
	}

	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	if ops != nil {
		ops.Attach(srv)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "kexserved: listening on %s (n=%d k=%d shards=%d impl=%s)\n",
		bound, *n, *k, *shards, *implName)
	if *dataDir != "" {
		rec := srv.Recovery()
		fmt.Fprintf(out, "kexserved: durable in %s (fsync=%s): recovered %d ops, restart %d, dropped %d torn bytes\n",
			*dataDir, policy, rec.RecoveredOps, rec.RestartCount, rec.DroppedBytes)
	}
	if clusterCfg != nil {
		fmt.Fprintf(out, "kexserved: cluster node %s of %d peers, quorum %d, lease %v, replication on %s\n",
			*nodeID, len(clusterCfg.Peers), srv.Node().Quorum(), srv.Node().LeaseDuration(), srv.Node().ReplAddr())
	}

	served := make(chan error, 1)
	go func() { served <- srv.Serve() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case err := <-served:
		return err
	case got := <-sig:
		fmt.Fprintf(out, "kexserved: %s: draining (timeout %s)\n", got, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		drainErr := srv.Shutdown(ctx)
		<-served
		if *statsJSON {
			fmt.Fprintf(out, "%s\n", srv.Stats().JSON())
		}
		if drainErr != nil {
			return fmt.Errorf("drain incomplete: %w", drainErr)
		}
		fmt.Fprintln(out, "kexserved: drained cleanly")
		return nil
	}
}
