// Command kexcheck model-checks a protocol exhaustively at a small
// configuration, verifying k-exclusion, k-assignment name uniqueness and
// absence of wedged states across every interleaving and crash pattern.
//
// Example:
//
//	kexcheck -proto cc-inductive -n 3 -k 2 -crashes 1
//	kexcheck -proto cc-fastpath+renaming -n 3 -k 2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"kexclusion/internal/algo"
	"kexclusion/internal/check"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kexcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kexcheck", flag.ContinueOnError)
	var (
		name      = fs.String("proto", "cc-inductive", "protocol name (see kexsim -list)")
		n         = fs.Int("n", 3, "number of processes")
		k         = fs.Int("k", 1, "critical-section slots")
		crashes   = fs.Int("crashes", 0, "crash transitions to explore (k-1 checks the paper's resiliency)")
		liveness  = fs.Bool("liveness", false, "additionally verify lockout-freedom (EF reachability of the CS)")
		maxStates = fs.Int("maxstates", 4_000_000, "state budget before truncating")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	pr, err := algo.ByName(*name)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "checking %s with N=%d k=%d crashes<=%d ...\n", pr.Name(), *n, *k, *crashes)
	res := check.Run(pr, check.Config{
		N:          *n,
		K:          *k,
		Model:      pr.Traits().Models[0],
		MaxCrashes: *crashes,
		MaxStates:  *maxStates,
	})
	fmt.Fprintf(out, "states=%d transitions=%d complete=%v max CS occupancy=%d\n",
		res.States, res.Transitions, res.Complete, res.MaxOccupancy)
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Fprintln(out, "VIOLATION:", v)
		}
		return fmt.Errorf("%d violation(s) found", len(res.Violations))
	}
	if !res.Complete {
		fmt.Fprintln(out, "NOTE: state space truncated; increase -maxstates for a full proof")
	} else {
		fmt.Fprintln(out, "OK: all reachable states satisfy the safety properties")
	}

	if *liveness {
		lres := check.RunLiveness(pr, check.Config{
			N:          *n,
			K:          *k,
			Model:      pr.Traits().Models[0],
			MaxCrashes: *crashes,
			MaxStates:  *maxStates,
		})
		if len(lres.Violations) > 0 {
			for _, v := range lres.Violations {
				fmt.Fprintln(out, "VIOLATION:", v)
			}
			return fmt.Errorf("%d liveness violation(s) found", len(lres.Violations))
		}
		fmt.Fprintf(out, "OK: lockout-freedom verified over %d states\n", lres.States)
	}
	return nil
}
