package main

import (
	"strings"
	"testing"
)

func TestCheckPasses(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-proto", "cc-inductive", "-n", "3", "-k", "2", "-crashes", "1"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "OK: all reachable states") {
		t.Fatalf("expected OK verdict:\n%s", b.String())
	}
}

func TestCheckFindsQueueWedge(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-proto", "fig1-queue", "-n", "3", "-k", "1", "-crashes", "1"}, &b)
	if err == nil {
		t.Fatal("expected violation error for the queue baseline under a crash")
	}
	if !strings.Contains(b.String(), "VIOLATION") {
		t.Fatalf("expected violation output:\n%s", b.String())
	}
}

func TestCheckTruncation(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-proto", "dsm-inductive", "-n", "3", "-k", "2", "-maxstates", "5000"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "truncated") {
		t.Fatalf("expected truncation note:\n%s", b.String())
	}
}

func TestCheckUnknownProtocol(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-proto", "no-such"}, &b); err == nil {
		t.Fatal("expected error")
	}
}
