// Netcounter: the paper's resilient shared counter, served over TCP.
//
// Each connected client leases one of the server's N process
// identities; every increment runs through the (N, k)-assignment
// wrapper of its shard, so at most k clients are inside any shard's
// wait-free core at once, and a client that vanishes mid-operation is
// absorbed as a crash fault.
//
//	go run ./examples/netcounter                 self-hosted demo
//	go run ./examples/netcounter -addr HOST:PORT drive a running kexserved
//	go run ./examples/netcounter -durable DIR    run, restart from DIR, verify survival
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"kexclusion/internal/durable"
	"kexclusion/internal/server"
	"kexclusion/internal/server/client"
)

// startServer boots a self-hosted kexserved, durable when dir is set.
func startServer(dir string) (*server.Server, string, func(), error) {
	srv, err := server.New(server.Config{
		N: 8, K: 2, Shards: 4,
		DataDir: dir, Fsync: durable.SyncInterval,
	})
	if err != nil {
		return nil, "", nil, err
	}
	bound, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, "", nil, err
	}
	go srv.Serve()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}
	return srv, bound.String(), stop, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netcounter:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", "", "kexserved address (empty: start an in-process server)")
		clients = flag.Int("clients", 4, "concurrent client connections")
		ops     = flag.Int("ops", 25, "increments per client")
		durDir  = flag.String("durable", "", "data directory: run the workload, restart the server from it, and verify the counters survived")
	)
	flag.Parse()
	if *clients < 1 || *ops < 1 {
		return fmt.Errorf("need clients >= 1 and ops >= 1, got clients=%d ops=%d", *clients, *ops)
	}
	if *durDir != "" && *addr != "" {
		return fmt.Errorf("-durable restarts a self-hosted server; it excludes -addr")
	}

	target := *addr
	var stop func()
	if target == "" {
		_, bound, stopFn, err := startServer(*durDir)
		if err != nil {
			return err
		}
		target, stop = bound, stopFn
		defer func() {
			if stop != nil {
				stop()
			}
		}()
		mode := ""
		if *durDir != "" {
			mode = fmt.Sprintf(", durable in %s", *durDir)
		}
		fmt.Printf("self-hosted kexserved on %s (n=8 k=2 shards=4%s)\n", target, mode)
	}

	// Baseline per shard, so the demo also works against a long-running
	// server whose counters are not zero.
	probe, err := client.Dial(target)
	if err != nil {
		return err
	}
	shards := probe.Hello().Shards
	before := make([]int64, shards)
	for sh := uint32(0); sh < shards; sh++ {
		if before[sh], err = probe.Get(sh); err != nil {
			return err
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, *clients)
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(target)
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", i, err)
				return
			}
			defer c.Close()
			shard := uint32(i) % shards
			for j := 0; j < *ops; j++ {
				if _, err := c.Add(shard, 1); err != nil {
					errs <- fmt.Errorf("client %d (p=%d) op %d: %w", i, c.Identity(), j, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}

	total := int64(0)
	after := make([]int64, shards)
	for sh := uint32(0); sh < shards; sh++ {
		if after[sh], err = probe.Get(sh); err != nil {
			return err
		}
		total += after[sh] - before[sh]
	}
	st, err := probe.Stats()
	if err != nil {
		return err
	}
	probe.Close()

	want := int64(*clients) * int64(*ops)
	fmt.Printf("counted %d increments across %d shards (want %d)\n", total, shards, want)
	fmt.Printf("server: impl=%s admitted=%d rejected=%d reclaimed=%d\n",
		st.Impl, st.Admitted, st.Rejected, st.Reclaimed)
	applied := int64(0)
	for _, snap := range st.PerShard {
		applied += snap.AppliedOps
	}
	fmt.Printf("per-shard metrics: %d applied ops, shard 0 %s\n", applied, st.PerShard[0].String())
	if total != want {
		return fmt.Errorf("lost updates: counted %d, want %d", total, want)
	}

	if *durDir != "" {
		// Phase 2: stop the server, boot a fresh one from the same data
		// directory, and check every shard's counter came back.
		stop()
		stop = nil
		srv2, target2, stop2, err := startServer(*durDir)
		if err != nil {
			return fmt.Errorf("restart: %w", err)
		}
		defer stop2()
		rec := srv2.Recovery()
		fmt.Printf("restarted from %s: restart_count=%d recovered_ops=%d\n",
			*durDir, rec.RestartCount, rec.RecoveredOps)
		probe2, err := client.Dial(target2)
		if err != nil {
			return err
		}
		defer probe2.Close()
		for sh := uint32(0); sh < shards; sh++ {
			v, err := probe2.Get(sh)
			if err != nil {
				return err
			}
			if v != after[sh] {
				return fmt.Errorf("shard %d lost state across restart: %d, want %d", sh, v, after[sh])
			}
		}
		fmt.Printf("all %d shards survived the restart intact\n", shards)
	}
	return nil
}
