// Netcounter: the paper's resilient shared counter, served over TCP.
//
// Each connected client leases one of the server's N process
// identities; every increment runs through the (N, k)-assignment
// wrapper of its shard, so at most k clients are inside any shard's
// wait-free core at once, and a client that vanishes mid-operation is
// absorbed as a crash fault.
//
//	go run ./examples/netcounter                 self-hosted demo
//	go run ./examples/netcounter -addr HOST:PORT drive a running kexserved
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"kexclusion/internal/server"
	"kexclusion/internal/server/client"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netcounter:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", "", "kexserved address (empty: start an in-process server)")
		clients = flag.Int("clients", 4, "concurrent client connections")
		ops     = flag.Int("ops", 25, "increments per client")
	)
	flag.Parse()
	if *clients < 1 || *ops < 1 {
		return fmt.Errorf("need clients >= 1 and ops >= 1, got clients=%d ops=%d", *clients, *ops)
	}

	target := *addr
	if target == "" {
		srv, err := server.New(server.Config{N: 8, K: 2, Shards: 4})
		if err != nil {
			return err
		}
		bound, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		go srv.Serve()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		target = bound.String()
		fmt.Printf("self-hosted kexserved on %s (n=8 k=2 shards=4)\n", target)
	}

	// Baseline per shard, so the demo also works against a long-running
	// server whose counters are not zero.
	probe, err := client.Dial(target)
	if err != nil {
		return err
	}
	shards := probe.Hello().Shards
	before := make([]int64, shards)
	for sh := uint32(0); sh < shards; sh++ {
		if before[sh], err = probe.Get(sh); err != nil {
			return err
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, *clients)
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(target)
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", i, err)
				return
			}
			defer c.Close()
			shard := uint32(i) % shards
			for j := 0; j < *ops; j++ {
				if _, err := c.Add(shard, 1); err != nil {
					errs <- fmt.Errorf("client %d (p=%d) op %d: %w", i, c.Identity(), j, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}

	total := int64(0)
	for sh := uint32(0); sh < shards; sh++ {
		after, err := probe.Get(sh)
		if err != nil {
			return err
		}
		total += after - before[sh]
	}
	st, err := probe.Stats()
	if err != nil {
		return err
	}
	probe.Close()

	want := int64(*clients) * int64(*ops)
	fmt.Printf("counted %d increments across %d shards (want %d)\n", total, shards, want)
	fmt.Printf("server: impl=%s admitted=%d rejected=%d reclaimed=%d\n",
		st.Impl, st.Admitted, st.Rejected, st.Reclaimed)
	applied := int64(0)
	for _, snap := range st.PerShard {
		applied += snap.AppliedOps
	}
	fmt.Printf("per-shard metrics: %d applied ops, shard 0 %s\n", applied, st.PerShard[0].String())
	if total != want {
		return fmt.Errorf("lost updates: counted %d, want %d", total, want)
	}
	return nil
}
