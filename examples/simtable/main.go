// simtable runs the machine simulator directly: it measures the paper's
// fast-path algorithm against the folklore spin counter on the
// cache-coherent model, printing remote references per acquisition as
// contention rises — a miniature of the reproduced Table 1 / Figure 3
// sweep, built from the public simulator API.
//
//	go run ./examples/simtable
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"kexclusion/internal/algo"
	"kexclusion/internal/bench"
	"kexclusion/internal/machine"
	"kexclusion/internal/proto"
)

func main() {
	const (
		n = 24
		k = 3
	)
	protocols := []proto.Protocol{
		algo.FastPath{}, // Theorem 3
		algo.Graceful{}, // Theorem 4
		algo.SpinFAA{},  // what most code ships today
	}
	opt := bench.Options{Seeds: 4, Acquisitions: 3}

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "contention\t")
	for _, pr := range protocols {
		fmt.Fprintf(w, "%s max(mean)\t", pr.Name())
	}
	fmt.Fprintln(w)
	for _, c := range []int{1, 3, 6, 12, 24} {
		fmt.Fprintf(w, "%d\t", c)
		for _, pr := range protocols {
			m := bench.Measure(pr, machine.CacheCoherent, n, k, c, opt)
			fmt.Fprintf(w, "%d (%.1f)\t", m.Max, m.Mean)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Printf("\npaper bounds at k=%d: fast path <= %d below contention k, <= %d above;\n",
		k, 7*k+2, 7*k*(bench.Log2Ceil(n, k)+1)+2)
	fmt.Println("the spin counter is unbounded under contention — the cost Table 1 reports as infinity.")
}
