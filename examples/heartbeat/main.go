// heartbeat demonstrates the snapshot object the paper's footnote 1
// singles out, composed with k-assignment: N transient workers lease
// process identities from an IDPool, publish progress heartbeats into
// one of k snapshot slots selected by their assigned name, and a
// watchdog takes wait-free consistent scans of all k slots — no lock
// protects the snapshot, and workers dying mid-run cost slots, never the
// watchdog's ability to scan.
//
//	go run ./examples/heartbeat
package main

import (
	"fmt"
	"sync"
	"time"

	"kexclusion/internal/renaming"
	"kexclusion/internal/resilient"
)

type beat struct {
	Worker int
	Count  int
}

func main() {
	const (
		nIDs    = 8 // leased process identities
		k       = 3 // concurrent publishers / snapshot slots
		workers = 12
		beats   = 150
	)
	var (
		ids  = renaming.NewIDPool(nIDs)
		asg  = renaming.New(nIDs, k)
		snap = resilient.NewSnapshot[beat](k)
	)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := ids.Get() // transient goroutine leases an identity
			defer ids.Put(id)
			limit := beats
			if w == 0 {
				limit = 5 // one worker "crashes" early
			}
			for i := 1; i <= limit; i++ {
				slot := asg.Acquire(id)
				snap.Update(slot, beat{Worker: w, Count: i})
				asg.Release(id, slot)
			}
		}(w)
	}

	// The watchdog scans while workers churn.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	scans := 0
	for {
		select {
		case <-done:
			view := snap.Scan()
			fmt.Printf("final view after %d consistent scans:\n", scans)
			for slot, b := range view {
				fmt.Printf("  slot %d: worker %d at beat %d\n", slot, b.Worker, b.Count)
			}
			return
		default:
			view := snap.Scan()
			scans++
			for _, b := range view {
				if b.Count < 0 || b.Count > beats {
					panic(fmt.Sprintf("inconsistent heartbeat: %+v", b))
				}
			}
			time.Sleep(time.Millisecond)
		}
	}
}
