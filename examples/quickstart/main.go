// Quickstart: a (k-1)-resilient shared counter in a few lines.
//
// The paper's methodology lets you pick the resiliency level k on
// performance grounds: the object behaves wait-free whenever at most k
// goroutines contend, and survives up to k-1 of them disappearing.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"kexclusion/internal/resilient"
)

func main() {
	const (
		n = 16 // goroutines (process identities)
		k = 4  // resiliency: tolerate k-1 failures, wait-free up to contention k
	)
	counter := resilient.NewCounter(n, k)

	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				counter.Add(p, 1)
			}
		}(p)
	}
	wg.Wait()

	fmt.Printf("counter = %d (want %d)\n", counter.Value(0), n*1000)
}
