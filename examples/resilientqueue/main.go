// resilientqueue demonstrates the full methodology on a work queue: a
// wait-free k-process FIFO queue inside a k-assignment wrapper, shared
// by N producer/consumer goroutines, with k-1 of them failing mid-run.
// Every item enqueued by a live producer is consumed exactly once; the
// failures cost slots, not progress and not items.
//
//	go run ./examples/resilientqueue
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"kexclusion/internal/resilient"
)

type job struct {
	Producer int
	Seq      int
}

func main() {
	const (
		n     = 10 // process identities
		k     = 3  // resiliency: survives k-1 = 2 failures
		items = 300
	)
	q := resilient.NewQueue[job](n, k)

	var (
		wg       sync.WaitGroup
		consumed atomic.Int64
		enqueued atomic.Int64
	)

	// Producers 0..3; producer 0 dies after a few items.
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			limit := items
			if p == 0 {
				limit = 10 // "crashes" early (stops participating)
			}
			for i := 0; i < limit; i++ {
				q.Enqueue(p, job{Producer: p, Seq: i})
				enqueued.Add(1)
			}
		}(p)
	}

	// Consumers 4..9; consumer 4 dies immediately after its first job.
	var consumerWG sync.WaitGroup
	done := make(chan struct{})
	for p := 4; p < n; p++ {
		consumerWG.Add(1)
		go func(p int) {
			defer consumerWG.Done()
			for {
				j, ok := q.Dequeue(p)
				if !ok {
					select {
					case <-done:
						if _, again := q.Dequeue(p); !again {
							return
						}
					default:
					}
					continue
				}
				consumed.Add(1)
				_ = j
				if p == 4 {
					return // consumer "crashes" after one job
				}
			}
		}(p)
	}

	wg.Wait() // all producers finished (or died)
	close(done)
	// Wait until everything produced has been drained.
	for consumed.Load() < enqueued.Load() {
	}
	consumerWG.Wait()

	fmt.Printf("enqueued %d jobs, consumed %d — exactly once each, despite 2 failed participants\n",
		enqueued.Load(), consumed.Load())
	if consumed.Load() != enqueued.Load() {
		panic("lost or duplicated jobs")
	}
}
