// connpool demonstrates k-assignment as a crash-tolerant resource pool —
// the scenario the paper's introduction motivates: N workers share k
// expensive resources (think database connections). The k-assignment
// wrapper both limits concurrency to k and hands each holder a unique
// resource index in 0..k-1, and because the underlying k-exclusion is
// (k-1)-resilient, workers that die while holding a connection cost the
// pool one connection each — never its liveness.
//
//	go run ./examples/connpool
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kexclusion/internal/renaming"
)

type pool struct {
	asg   *renaming.Assignment
	conns []connection
}

type connection struct {
	queries atomic.Int64
}

func newPool(nWorkers, kConns int) *pool {
	return &pool{
		asg:   renaming.New(nWorkers, kConns),
		conns: make([]connection, kConns),
	}
}

// withConn runs f on an exclusively-held connection.
func (pl *pool) withConn(worker int, f func(c *connection)) {
	idx := pl.asg.Acquire(worker) // blocks until a connection is free
	defer pl.asg.Release(worker, idx)
	f(&pl.conns[idx])
}

func main() {
	const (
		workers = 12
		conns   = 4
		queries = 200
	)
	pl := newPool(workers, conns)

	var wg sync.WaitGroup
	var completed atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := 0; q < queries; q++ {
				// Workers 0..conns-2 "crash" while holding a
				// connection partway through: they take one and never
				// give it back (conns-1 failures are tolerated).
				if w < conns-1 && q == 50 {
					pl.asg.Acquire(w)
					return // worker dies holding a connection
				}
				pl.withConn(w, func(c *connection) {
					c.queries.Add(1)
					time.Sleep(10 * time.Microsecond) // the "query"
				})
				completed.Add(1)
			}
		}(w)
	}
	wg.Wait()

	var total int64
	for i := range pl.conns {
		q := pl.conns[i].queries.Load()
		fmt.Printf("connection %d served %d queries\n", i, q)
		total += q
	}
	healthy := workers - (conns - 1)
	want := int64(healthy*queries + (conns-1)*50)
	fmt.Printf("total %d queries (want %d); %d workers crashed holding a connection, pool stayed live\n",
		total, want, conns-1)
	if total != want {
		panic("pool lost queries")
	}
}
