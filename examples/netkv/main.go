// Netkv: the kx05 typed-object store in one sitting — named maps,
// registers, queues, and atomic cross-shard groups over TCP.
//
// The demo runs four acts against one server:
//
//  1. a concurrent key-value workload on a named map (every client
//     writes its own keys, then everything is read back),
//
//  2. an atomic two-register transfer loop whose invariant (the sum of
//     both accounts) must hold at every point,
//
//  3. a queue dequeue re-issued under its original op ID, answered
//     from the dedup window instead of popping twice,
//
//  4. with -durable, a restart from the same data directory after
//     which all of the above must still be there.
//
//     go run ./examples/netkv                 self-hosted demo
//     go run ./examples/netkv -addr HOST:PORT drive a running kexserved
//     go run ./examples/netkv -durable DIR    run, restart from DIR, verify survival
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"kexclusion/internal/durable"
	"kexclusion/internal/object"
	"kexclusion/internal/server"
	"kexclusion/internal/server/client"
	"kexclusion/internal/wire"
)

// startServer boots a self-hosted kexserved, durable when dir is set.
func startServer(dir string) (*server.Server, string, func(), error) {
	srv, err := server.New(server.Config{
		N: 8, K: 2, Shards: 4,
		DataDir: dir, Fsync: durable.SyncInterval,
	})
	if err != nil {
		return nil, "", nil, err
	}
	bound, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, "", nil, err
	}
	go srv.Serve()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}
	return srv, bound.String(), stop, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netkv:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", "", "kexserved address (empty: start an in-process server)")
		clients = flag.Int("clients", 4, "concurrent client connections")
		ops     = flag.Int("ops", 25, "map writes per client (and atomic transfers)")
		durDir  = flag.String("durable", "", "data directory: run the workload, restart the server from it, and verify the objects survived")
	)
	flag.Parse()
	if *clients < 1 || *ops < 1 {
		return fmt.Errorf("need clients >= 1 and ops >= 1, got clients=%d ops=%d", *clients, *ops)
	}
	if *durDir != "" && *addr != "" {
		return fmt.Errorf("-durable restarts a self-hosted server; it excludes -addr")
	}

	target := *addr
	var stop func()
	if target == "" {
		_, bound, stopFn, err := startServer(*durDir)
		if err != nil {
			return err
		}
		target, stop = bound, stopFn
		defer func() {
			if stop != nil {
				stop()
			}
		}()
		mode := ""
		if *durDir != "" {
			mode = fmt.Sprintf(", durable in %s", *durDir)
		}
		fmt.Printf("self-hosted kexserved on %s (n=8 k=2 shards=4%s)\n", target, mode)
	}

	probe, err := client.Dial(target)
	if err != nil {
		return err
	}
	defer probe.Close()
	if !probe.SupportsObjects() {
		return fmt.Errorf("server at %s did not negotiate the kx05 object extension", target)
	}

	// Act 1: a named map, written concurrently. Creation is idempotent,
	// so every client may race to create it.
	const kv = "demo:inventory"
	if _, err := probe.Create(kv, object.TypeMap, 0); err != nil {
		return err
	}
	var wg sync.WaitGroup
	errs := make(chan error, *clients)
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(target)
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", i, err)
				return
			}
			defer c.Close()
			for j := 0; j < *ops; j++ {
				key := fmt.Sprintf("c%d:%d", i, j)
				if _, err := c.MapPut(kv, key, int64(i*1000+j)); err != nil {
					errs <- fmt.Errorf("client %d put %s: %w", i, key, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	for i := 0; i < *clients; i++ {
		for j := 0; j < *ops; j++ {
			key := fmt.Sprintf("c%d:%d", i, j)
			v, found, err := probe.MapGet(kv, key)
			if err != nil {
				return err
			}
			if !found || v != int64(i*1000+j) {
				return fmt.Errorf("map lost %s: got %d (found=%v)", key, v, found)
			}
		}
	}
	fmt.Printf("map %q holds all %d keys from %d clients\n", kv, *clients**ops, *clients)

	// Act 2: atomic transfers between two registers, very likely on
	// different shards (placement is by name hash). The invariant — the
	// accounts always sum to the seed amount — holds even if the group
	// spans shards, because the group commits under one WAL record.
	const alice, bob = "acct:alice", "acct:bob"
	for _, name := range []string{alice, bob} {
		if _, err := probe.Create(name, object.TypeRegister, 0); err != nil {
			return err
		}
	}
	seedRes, err := probe.RegAdd(alice, 100)
	if err != nil {
		return err
	}
	seeded := seedRes.Value
	bobStart, _, err := probe.RegGet(bob)
	if err != nil {
		return err
	}
	for i := 0; i < *ops; i++ {
		group := probe.AtomicSeqs([]client.AtomicOp{
			{Kind: wire.KindRegAdd, Obj: alice, Arg: -1},
			{Kind: wire.KindRegAdd, Obj: bob, Arg: 1},
		})
		if _, err := probe.Atomic(group); err != nil {
			return fmt.Errorf("transfer %d: %w", i, err)
		}
	}
	a, _, err := probe.RegGet(alice)
	if err != nil {
		return err
	}
	b, _, err := probe.RegGet(bob)
	if err != nil {
		return err
	}
	if a+b != seeded+bobStart {
		return fmt.Errorf("transfer invariant broken: %d + %d != %d", a, b, seeded+bobStart)
	}
	fmt.Printf("registers %q=%d %q=%d after %d atomic transfers (sum preserved, shards %d and %d)\n",
		alice, a, bob, b, *ops, probe.ShardFor(alice), probe.ShardFor(bob))

	// Act 3: exactly-once dequeue. Re-issuing a dequeue under its
	// original op ID is how a client retries a lost ack; the dedup
	// window answers with the ORIGINAL popped value instead of popping
	// again.
	const orders = "demo:orders"
	if _, err := probe.Create(orders, object.TypeQueue, 0); err != nil {
		return err
	}
	for _, v := range []int64{7, 8, 9} {
		if _, err := probe.QEnq(orders, v); err != nil {
			return err
		}
	}
	deqSeq := probe.NextSeq()
	shard := probe.ShardFor(orders)
	popped, err := probe.QDeqOp(shard, orders, deqSeq)
	if err != nil {
		return err
	}
	redo, err := probe.QDeqOp(shard, orders, deqSeq) // the "retry"
	if err != nil {
		return err
	}
	n, _, err := probe.QLen(orders)
	if err != nil {
		return err
	}
	if !redo.WasDuplicate || redo.Value != popped.Value || n != 2 {
		return fmt.Errorf("retry popped again: first=%+v retry=%+v len=%d", popped, redo, n)
	}
	fmt.Printf("queue %q: dequeue of %d retried under seq %d answered as duplicate; %d elements remain\n",
		orders, popped.Value, deqSeq, n)

	st, err := probe.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("server: map_ops=%d register_ops=%d queue_ops=%d read_fastpath=%d atomic_groups=%d\n",
		st.ObjMapOps, st.ObjRegisterOps, st.ObjQueueOps, st.ReadFastpath, st.BatchAtomic)

	if *durDir != "" {
		// Act 4: stop the server, boot a fresh one from the same data
		// directory, and check every object came back.
		stop()
		stop = nil
		srv2, target2, stop2, err := startServer(*durDir)
		if err != nil {
			return fmt.Errorf("restart: %w", err)
		}
		defer stop2()
		rec := srv2.Recovery()
		fmt.Printf("restarted from %s: restart_count=%d recovered_ops=%d\n",
			*durDir, rec.RestartCount, rec.RecoveredOps)
		probe2, err := client.Dial(target2)
		if err != nil {
			return err
		}
		defer probe2.Close()
		key := fmt.Sprintf("c%d:%d", *clients-1, *ops-1)
		v, found, err := probe2.MapGet(kv, key)
		if err != nil {
			return err
		}
		if !found || v != int64((*clients-1)*1000+*ops-1) {
			return fmt.Errorf("map lost %s across restart: got %d (found=%v)", key, v, found)
		}
		a2, _, err := probe2.RegGet(alice)
		if err != nil {
			return err
		}
		b2, _, err := probe2.RegGet(bob)
		if err != nil {
			return err
		}
		if a2 != a || b2 != b {
			return fmt.Errorf("registers lost state across restart: %d/%d, want %d/%d", a2, b2, a, b)
		}
		n2, _, err := probe2.QLen(orders)
		if err != nil {
			return err
		}
		if n2 != n {
			return fmt.Errorf("queue lost state across restart: len=%d, want %d", n2, n)
		}
		fmt.Printf("all objects survived the restart intact (map, registers, queue)\n")
	}
	return nil
}
