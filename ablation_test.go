// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - renaming primitive: Figure 7's test&set scan (exact name space k)
//     versus the splitter grid of reference [13] (read/write only, name
//     space k(k+1)/2);
//   - spin budget: how aggressively native waiters poll before yielding;
//   - composition: the inductive chain versus tree versus fast path at
//     the same (N,k), natively;
//   - the resilient counter's wrapper choice (fast path versus plain
//     counting semaphore) — what the paper's wrapper costs and buys.
//
// Run: go test -bench=Ablation -benchmem
package kexclusion

import (
	"fmt"
	"sync"
	"testing"

	"kexclusion/internal/core"
	"kexclusion/internal/renaming"
	"kexclusion/internal/resilient"
)

// BenchmarkAblationRenamingPrimitive compares acquire/release of a name
// under the two renaming algorithms at the same concurrency k.
func BenchmarkAblationRenamingPrimitive(b *testing.B) {
	const k = 4
	b.Run("fig7-testandset", func(b *testing.B) {
		l := renaming.NewLongLived(k)
		for i := 0; i < b.N; i++ {
			name := l.Acquire()
			l.Release(name)
		}
	})
	b.Run("grid-readwrite", func(b *testing.B) {
		g := renaming.NewGrid(k)
		for i := 0; i < b.N; i++ {
			// One-shot: each acquisition needs a quiescent reset,
			// which is itself part of the cost being measured.
			name := g.Acquire(0)
			_ = name
			g.Reset()
		}
	})
}

// BenchmarkAblationSpinBudget sweeps the spin budget of the local-spin
// algorithm under contention; too small burns scheduler switches, too
// large burns cycles that would release waiters on a saturated host.
func BenchmarkAblationSpinBudget(b *testing.B) {
	const n, k = 8, 2
	for _, budget := range []int{1, 16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("budget%d", budget), func(b *testing.B) {
			kx := core.NewLocalSpin(n, k, core.WithSpinBudget(budget))
			var wg sync.WaitGroup
			per := (b.N + n - 1) / n
			b.ResetTimer()
			for p := 0; p < n; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						kx.Acquire(p)
						kx.Release(p)
					}
				}(p)
			}
			wg.Wait()
		})
	}
}

// BenchmarkAblationComposition holds (N,k) fixed and varies only the
// composition strategy.
func BenchmarkAblationComposition(b *testing.B) {
	const n, k = 32, 4
	impls := map[string]core.KExclusion{
		"chain-7(N-k)":  core.NewInductive(n, k),
		"tree-7klogNk":  core.NewTree(n, k),
		"fastpath-7k+2": core.NewFastPath(n, k),
		"graceful":      core.NewGraceful(n, k),
	}
	for name, kx := range impls {
		for _, g := range []int{k, n} {
			b.Run(fmt.Sprintf("%s/goroutines%d", name, g), func(b *testing.B) {
				var wg sync.WaitGroup
				per := (b.N + g - 1) / g
				b.ResetTimer()
				for p := 0; p < g; p++ {
					wg.Add(1)
					go func(p int) {
						defer wg.Done()
						for i := 0; i < per; i++ {
							kx.Acquire(p)
							kx.Release(p)
						}
					}(p)
				}
				wg.Wait()
			})
		}
	}
}

// BenchmarkAblationWrapper compares the resilient counter with the
// paper's fast-path wrapper against the same wait-free core behind a
// plain counting-semaphore wrapper: what the local-spin algorithms buy
// over the folklore gate, end to end.
func BenchmarkAblationWrapper(b *testing.B) {
	const n, k = 16, 4
	builds := map[string]func() *resilient.Shared[int64]{
		"fastpath-wrapper": func() *resilient.Shared[int64] {
			return resilient.NewShared[int64](n, k, 0, nil)
		},
		"counting-wrapper": func() *resilient.Shared[int64] {
			return resilient.NewSharedConfig[int64](n, k, 0, nil,
				resilient.Config{Excl: core.NewCounting(n, k)})
		},
		"localspin-wrapper": func() *resilient.Shared[int64] {
			return resilient.NewSharedConfig[int64](n, k, 0, nil,
				resilient.Config{Excl: core.NewLocalSpinFastPath(n, k)})
		},
	}
	for name, build := range builds {
		b.Run(name, func(b *testing.B) {
			s := build()
			var wg sync.WaitGroup
			per := (b.N + n - 1) / n
			b.ResetTimer()
			for p := 0; p < n; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						s.Apply(p, func(v int64) (int64, any) { return v + 1, nil })
					}
				}(p)
			}
			wg.Wait()
		})
	}
}
