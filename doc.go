// Package kexclusion reproduces Anderson & Moir, "Using k-Exclusion to
// Implement Resilient, Scalable Shared Objects" (PODC 1994).
//
// The repository contains two parallel realizations of the paper:
//
//   - A deterministic shared-memory multiprocessor simulator
//     (internal/machine, internal/proto) on which every algorithm in the
//     paper — and the prior-work baselines of its Table 1 — runs as an
//     explicit state machine (internal/algo). The simulator counts remote
//     memory references exactly per the paper's §2 cost model for
//     cache-coherent and distributed shared-memory machines, so the
//     paper's complexity results (Table 1, Theorems 1-10) are reproduced
//     with the paper's own metric. internal/check model-checks the
//     algorithms' safety invariants exhaustively for small configurations.
//
//   - A native Go library (internal/core, internal/renaming,
//     internal/resilient) implementing the same local-spin k-exclusion
//     algorithms with sync/atomic for real goroutines, topped by the
//     paper's headline methodology: a (k-1)-resilient shared object built
//     from a wait-free k-process universal construction wrapped in a
//     k-assignment (k-exclusion + long-lived renaming) layer.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package kexclusion
