// Cross-layer integration tests: the simulator and the native library
// implement the same algorithms, and the methodology holds end to end.
package kexclusion

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kexclusion/internal/algo"
	"kexclusion/internal/bench"
	"kexclusion/internal/core"
	"kexclusion/internal/machine"
	"kexclusion/internal/proto"
	"kexclusion/internal/resilient"
)

// TestSimulatorAndNativeAgree runs each algorithm family in both
// realizations at the same (N,k) and checks the shared contract: the
// k-exclusion invariant holds and everyone completes.
func TestSimulatorAndNativeAgree(t *testing.T) {
	const n, k = 9, 3
	pairs := []struct {
		name   string
		sim    proto.Protocol
		native core.KExclusion
	}{
		{"inductive", algo.Inductive{}, core.NewInductive(n, k)},
		{"tree", algo.Tree{}, core.NewTree(n, k)},
		{"fastpath", algo.FastPath{}, core.NewFastPath(n, k)},
		{"graceful", algo.Graceful{}, core.NewGraceful(n, k)},
		{"localspin", algo.InductiveDSM{}, core.NewLocalSpin(n, k)},
	}
	for _, pair := range pairs {
		t.Run(pair.name, func(t *testing.T) {
			// Simulator side.
			res := proto.RunProtocol(pair.sim, pair.sim.Traits().Models[0], n, k, proto.Config{
				Acquisitions: 4,
				Sched:        machine.NewRandom(7),
			})
			if len(res.Violations) > 0 || !res.Completed || res.MaxOccupancy > k {
				t.Fatalf("simulator side misbehaved: %+v", res.Violations)
			}

			// Native side.
			var occ, peak atomic.Int64
			var wg sync.WaitGroup
			for p := 0; p < n; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for r := 0; r < 40; r++ {
						pair.native.Acquire(p)
						o := occ.Add(1)
						for {
							m := peak.Load()
							if o <= m || peak.CompareAndSwap(m, o) {
								break
							}
						}
						occ.Add(-1)
						pair.native.Release(p)
					}
				}(p)
			}
			wg.Wait()
			if peak.Load() > int64(k) {
				t.Fatalf("native side exceeded k: %d", peak.Load())
			}
		})
	}
}

// TestMethodologyEndToEnd is the paper's §1 pitch as one test: build a
// (k-1)-resilient object, beat on it from N goroutines while k-1 of them
// die holding wrapper slots, and verify both progress and linearized
// results.
func TestMethodologyEndToEnd(t *testing.T) {
	const n, k, rounds = 10, 3, 60
	excl := core.NewLocalSpinFastPath(n, k)
	s := resilient.NewSharedConfig(n, k, int64(0), nil, resilient.Config{Excl: excl})

	// k-1 processes fail while holding wrapper slots: grabbing the
	// shared exclusion directly and never releasing is exactly what a
	// goroutine dying inside the wrapper looks like to everyone else.
	for p := 0; p < k-1; p++ {
		excl.Acquire(p)
	}

	survivors := n - (k - 1)
	var wg sync.WaitGroup
	var applied atomic.Int64
	for p := k - 1; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				s.Apply(p, func(v int64) (int64, any) { return v + 1, nil })
				applied.Add(1)
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("stalled after %d operations with %d dead holders", applied.Load(), k-1)
	}
	if got := s.Peek(); got != int64(survivors*rounds) {
		t.Fatalf("final state %d, want %d", got, survivors*rounds)
	}
}

// TestTable1ShapeRegression pins the qualitative shape of Table 1 (who
// wins where), which must survive refactoring even though exact numbers
// may wiggle: the fast path beats every baseline that busy-waits on
// shared state once contention exceeds k, and stays within its bound.
func TestTable1ShapeRegression(t *testing.T) {
	const n, k = 16, 2
	opt := bench.Options{Seeds: 3, Acquisitions: 3}
	fp := bench.Measure(algo.FastPath{}, machine.CacheCoherent, n, k, 0, opt)
	sf := bench.Measure(algo.SpinFAA{}, machine.CacheCoherent, n, k, 0, opt)
	bk := bench.Measure(algo.Bakery{}, machine.Distributed, n, k, 0, opt)

	bound := uint64(7*k*(bench.Log2Ceil(n, k)+1) + 2)
	if fp.Max > bound {
		t.Fatalf("fast path exceeded its bound: %d > %d", fp.Max, bound)
	}
	if sf.Max <= fp.Max {
		t.Errorf("spinfaa (%d) should be worse than the fast path (%d) at full contention", sf.Max, fp.Max)
	}
	if bk.Max <= fp.Max {
		t.Errorf("bakery (%d) should be worse than the fast path (%d) at full contention", bk.Max, fp.Max)
	}
}

// TestTheoremTableConsistency cross-checks the bench package's bound
// formulas against the independent copies in the algo test suite by
// recomputing a few by hand.
func TestTheoremTableConsistency(t *testing.T) {
	cases := []struct {
		n, k, depth int
	}{
		{16, 4, 2}, {32, 4, 3}, {8, 1, 3}, {9, 4, 2},
	}
	for _, c := range cases {
		if got := bench.Log2Ceil(c.n, c.k); got != c.depth {
			t.Errorf("Log2Ceil(%d,%d) = %d, want %d", c.n, c.k, got, c.depth)
		}
	}
	if bench.CeilDiv(7, 2) != 4 {
		t.Error("CeilDiv wrong")
	}
}

// TestEveryProtocolHasTable1Metadata keeps the registry and the Table 1
// annotations in sync.
func TestEveryProtocolHasTable1Metadata(t *testing.T) {
	rows := bench.Table1(6, 2, bench.Options{Seeds: 1, Acquisitions: 1})
	for _, r := range rows {
		if r.Primitives == "" {
			t.Errorf("protocol %s missing primitives annotation", r.Algorithm)
		}
		if r.PaperRow == "" {
			t.Errorf("protocol %s missing paper-row annotation", r.Algorithm)
		}
	}
}
